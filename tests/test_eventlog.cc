/**
 * @file
 * Tests for the decision ledger (src/eventlog) and the accounting
 * agreement between the ledger, MigrationDecision::pagesMoved(),
 * and the telemetry migration counters.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "eventlog/eventlog.hh"
#include "hma/system.hh"
#include "migration/engine.hh"
#include "perf/json.hh"
#include "telemetry/registry.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{
namespace
{

/** Fresh, enabled ledger per test; everything off afterwards. */
class EventlogTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        eventlog::reset();
        eventlog::setEnabled(true);
    }

    void TearDown() override
    {
        eventlog::setEnabled(false);
        eventlog::reset();
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
};

eventlog::EventRecord
placeRecord(PageId page)
{
    eventlog::EventRecord record;
    record.kind = eventlog::EventKind::Place;
    record.policy = eventlog::PolicyId::Balanced;
    record.page = page;
    record.dst = eventlog::Tier::Hbm;
    record.hotness = 10.0F;
    return record;
}

TEST_F(EventlogTest, EmitCollectAndStats)
{
    eventlog::RunScope scope("test/run");
    for (PageId page = 0; page < 10; ++page)
        eventlog::emit(placeRecord(page));
    const auto records = eventlog::collect();
    ASSERT_EQ(records.size(), 10u);
    for (std::size_t i = 0; i < records.size(); ++i) {
        EXPECT_EQ(records[i].page, static_cast<PageId>(i));
        EXPECT_EQ(records[i].seq, static_cast<std::uint32_t>(i));
        EXPECT_EQ(eventlog::runLabel(records[i].run), "test/run");
    }
    EXPECT_EQ(eventlog::stats().recorded, 10u);
    EXPECT_EQ(eventlog::stats().dropped, 0u);
}

TEST_F(EventlogTest, RingDrainsPastCapacityInOrder)
{
    eventlog::RunScope scope("test/big");
    const std::size_t total = 2 * eventlog::ringCapacity + 17;
    for (std::size_t i = 0; i < total; ++i)
        eventlog::emit(placeRecord(static_cast<PageId>(i)));
    const auto records = eventlog::collect();
    ASSERT_EQ(records.size(), total);
    // One thread, one scope: drain order is emission order.
    for (std::size_t i = 0; i < total; ++i)
        EXPECT_EQ(records[i].seq, static_cast<std::uint32_t>(i));
}

TEST_F(EventlogTest, ScopesNestAndUnscopedIsRunZero)
{
    eventlog::emit(placeRecord(1));
    {
        eventlog::RunScope outer("test/outer");
        eventlog::emit(placeRecord(2));
        {
            eventlog::RunScope inner("test/inner");
            eventlog::emit(placeRecord(3));
        }
        eventlog::emit(placeRecord(4));
    }
    const auto records = eventlog::collect();
    ASSERT_EQ(records.size(), 4u);
    std::map<PageId, std::string> labels;
    for (const auto &record : records)
        labels[record.page] = eventlog::runLabel(record.run);
    EXPECT_EQ(labels[1], "unattributed");
    EXPECT_EQ(labels[2], "test/outer");
    EXPECT_EQ(labels[3], "test/inner");
    EXPECT_EQ(labels[4], "test/outer");
}

TEST_F(EventlogTest, CapacityCapsAndCountsDrops)
{
    eventlog::setCapacity(5);
    eventlog::RunScope scope("test/capped");
    for (PageId page = 0; page < 12; ++page)
        eventlog::emit(placeRecord(page));
    EXPECT_EQ(eventlog::collect().size(), 5u);
    EXPECT_EQ(eventlog::stats().recorded, 5u);
    EXPECT_EQ(eventlog::stats().dropped, 7u);
}

TEST_F(EventlogTest, DisabledScopeIsInert)
{
    eventlog::setEnabled(false);
    eventlog::RunScope scope("test/never");
    // Instrumentation sites are macro-gated, so nothing emits while
    // disabled; the scope itself must also not register its label.
    eventlog::setEnabled(true);
    eventlog::emit(placeRecord(1));
    const auto records = eventlog::collect();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(eventlog::runLabel(records[0].run), "unattributed");
}

TEST_F(EventlogTest, JsonlIsParseableAndSelfDescribing)
{
    {
        eventlog::RunScope scope("test/jsonl");
        eventlog::emit(placeRecord(7));

        // The second record carries a tenant stamp (v2): rendered
        // on this record only, so single-tenant output is
        // unchanged from v1.
        eventlog::TenantScope tenant(42);
        eventlog::EventRecord swap;
        swap.kind = eventlog::EventKind::SwapOut;
        swap.policy = eventlog::PolicyId::PerfMigration;
        swap.page = 7;
        swap.partner = 9;
        swap.src = eventlog::Tier::Hbm;
        swap.dst = eventlog::Tier::Ddr;
        swap.epoch = 1000;
        eventlog::emit(swap);
    }
    {
        eventlog::RunScope scope("test/jsonl");
        eventlog::EventRecord epoch;
        epoch.kind = eventlog::EventKind::Epoch;
        epoch.policy = eventlog::PolicyId::PerfMigration;
        epoch.epoch = 1000;
        epoch.hotness = 2.0F; // promotions
        epoch.wrRatio = 1.0F; // evictions
        epoch.avf = 3.0F;     // swaps
        eventlog::emit(epoch);

        eventlog::EventRecord fault;
        fault.kind = eventlog::EventKind::Fault;
        fault.policy = eventlog::PolicyId::FaultSim;
        fault.page = 11;
        fault.dst = eventlog::Tier::Hbm;
        fault.detail = 3; // row
        eventlog::emit(fault);
    }

    const std::string jsonl = eventlog::toJsonl("test_eventlog");
    std::istringstream in(jsonl);
    std::string line;
    std::vector<perf::JsonValue> docs;
    std::string error;
    while (std::getline(in, line)) {
        perf::JsonValue doc;
        ASSERT_TRUE(perf::parseJson(line, doc, error))
            << error << " in: " << line;
        docs.push_back(std::move(doc));
    }
    ASSERT_EQ(docs.size(), 5u); // header + 4 records

    EXPECT_EQ(docs[0].stringOr("schema", ""), "ramp-events-v2");
    EXPECT_EQ(docs[0].stringOr("tool", ""), "test_eventlog");
    EXPECT_DOUBLE_EQ(docs[0].numberOr("records", 0), 4.0);
    EXPECT_DOUBLE_EQ(docs[0].numberOr("dropped", -1), 0.0);

    EXPECT_EQ(docs[1].stringOr("kind", ""), "place");
    EXPECT_EQ(docs[1].stringOr("run", ""), "test/jsonl");
    EXPECT_DOUBLE_EQ(docs[1].numberOr("page", -1), 7.0);
    EXPECT_EQ(docs[1].stringOr("dst", ""), "hbm");
    // No TenantScope active: the v2 key is omitted entirely.
    EXPECT_EQ(docs[1].find("tenant"), nullptr);

    EXPECT_EQ(docs[2].stringOr("kind", ""), "swap-out");
    EXPECT_DOUBLE_EQ(docs[2].numberOr("partner", -1), 9.0);
    EXPECT_EQ(docs[2].stringOr("src", ""), "hbm");
    EXPECT_EQ(docs[2].stringOr("dst", ""), "ddr");
    EXPECT_DOUBLE_EQ(docs[2].numberOr("tenant", -1), 42.0);

    EXPECT_EQ(docs[3].stringOr("kind", ""), "epoch");
    EXPECT_DOUBLE_EQ(docs[3].numberOr("promoted", -1), 2.0);
    EXPECT_DOUBLE_EQ(docs[3].numberOr("evicted", -1), 1.0);
    EXPECT_DOUBLE_EQ(docs[3].numberOr("swapped", -1), 3.0);
    // moved = promoted + evicted + 2 * swapped
    EXPECT_DOUBLE_EQ(docs[3].numberOr("moved", -1), 9.0);

    EXPECT_EQ(docs[4].stringOr("kind", ""), "fault");
    EXPECT_EQ(docs[4].stringOr("tier", ""), "hbm");
    EXPECT_EQ(docs[4].stringOr("mode", ""), "row");
}

TEST_F(EventlogTest, PostMortemKeepsOnlyTheTail)
{
    eventlog::RunScope scope("test/tail");
    for (PageId page = 0; page < 10; ++page)
        eventlog::emit(placeRecord(page));
    const std::string jsonl =
        eventlog::postMortemJsonl("test_eventlog", 3);
    std::istringstream in(jsonl);
    std::string line;
    std::vector<std::string> lines;
    while (std::getline(in, line))
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u); // header + trailing 3
    perf::JsonValue doc;
    std::string error;
    ASSERT_TRUE(perf::parseJson(lines.back(), doc, error)) << error;
    EXPECT_DOUBLE_EQ(doc.numberOr("page", -1), 9.0);
}

// ---------------------------------------------------------------
// Ledger vs pagesMoved() vs telemetry counters: all three views of
// a migration epoch derive from the same MigrationDecision, so they
// must agree exactly for every engine.
// ---------------------------------------------------------------

SystemConfig
smallConfig()
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.cores = 2;
    config.fcIntervalCycles = 10000;
    config.meaIntervalCycles = 1000;
    return config;
}

/** Two cores hammering a small set of pages (test_system idiom). */
std::vector<CoreTrace>
smallTraces(int pages, int requests)
{
    std::vector<CoreTrace> traces(2);
    for (int core = 0; core < 2; ++core) {
        for (int i = 0; i < requests; ++i) {
            MemRequest req;
            const int page = (i * 7 + core) % pages;
            req.addr = static_cast<Addr>(page) * pageSize +
                       static_cast<Addr>(i % 64) * lineSize;
            req.gap = 20;
            req.core = static_cast<CoreId>(core);
            req.isWrite = (i % 4) == 0;
            traces[static_cast<std::size_t>(core)].push_back(req);
        }
    }
    return traces;
}

struct LedgerCounts
{
    std::uint64_t promote = 0;
    std::uint64_t evict = 0;
    std::uint64_t swapIn = 0;
    std::uint64_t swapOut = 0;
    std::uint64_t epochs = 0;
    double epochMoved = 0; ///< sum of per-epoch pagesMoved()
};

LedgerCounts
countLedger()
{
    LedgerCounts counts;
    for (const auto &record : eventlog::collect()) {
        switch (record.kind) {
          case eventlog::EventKind::Promote: ++counts.promote; break;
          case eventlog::EventKind::Evict: ++counts.evict; break;
          case eventlog::EventKind::SwapIn: ++counts.swapIn; break;
          case eventlog::EventKind::SwapOut:
            ++counts.swapOut;
            break;
          case eventlog::EventKind::Epoch:
            ++counts.epochs;
            // promotions + evictions + 2 * swaps, as recorded.
            counts.epochMoved +=
                static_cast<double>(record.hotness) +
                static_cast<double>(record.wrRatio) +
                2.0 * static_cast<double>(record.avf);
            break;
          default: break;
        }
    }
    return counts;
}

void
checkEngineAccounting(MigrationEngine &engine)
{
    telemetry::resetAll();
    telemetry::setEnabled(true);
    eventlog::reset();
    eventlog::setEnabled(true);

    const auto config = smallConfig();
    HmaSystem system(config);
    std::uint64_t migrated = 0;
    {
        eventlog::RunScope scope(std::string("test/") +
                                 engine.name());
        const auto result =
            system.run(smallTraces(64, 20000),
                       PlacementMap(config.hbmPages()), &engine);
        migrated = result.migratedPages;
    }

    const LedgerCounts counts = countLedger();
    const std::uint64_t promoted =
        telemetry::metrics()
            .counter("migration.pages_promoted")
            .total();
    const std::uint64_t demoted =
        telemetry::metrics()
            .counter("migration.pages_demoted")
            .total();
    const std::uint64_t swaps =
        telemetry::metrics().counter("migration.swaps").total();

    SCOPED_TRACE(engine.name());
    EXPECT_GT(counts.epochs, 0u) << "no migration epochs recorded";
    // Each swap is one swap-in plus one swap-out record.
    EXPECT_EQ(counts.swapIn, counts.swapOut);
    EXPECT_EQ(counts.swapIn, swaps);
    // Telemetry: pages_promoted = promotions + swaps,
    //            pages_demoted  = evictions + swaps.
    EXPECT_EQ(counts.promote + counts.swapIn, promoted);
    EXPECT_EQ(counts.evict + counts.swapOut, demoted);
    // Per-page ledger records sum to the epochs' pagesMoved() sums.
    const std::uint64_t ledger_moves = counts.promote +
                                       counts.evict +
                                       counts.swapIn +
                                       counts.swapOut;
    EXPECT_EQ(static_cast<double>(ledger_moves),
              counts.epochMoved);
    // The ledger records decisions; applyDecision may skip a move
    // (pinned page, full HBM), so applied migrations can only be
    // fewer.
    EXPECT_GT(migrated, 0u);
    EXPECT_LE(migrated, ledger_moves);
}

TEST_F(EventlogTest, PerfMigrationLedgerMatchesCounters)
{
    PerfFocusedMigration engine(smallConfig().fcIntervalCycles, 64);
    checkEngineAccounting(engine);
}

TEST_F(EventlogTest, FcMigrationLedgerMatchesCounters)
{
    FcReliabilityMigration engine(smallConfig().fcIntervalCycles,
                                  64);
    checkEngineAccounting(engine);
}

TEST_F(EventlogTest, CcMigrationLedgerMatchesCounters)
{
    const auto config = smallConfig();
    CrossCounterMigration engine(
        config.meaIntervalCycles,
        static_cast<std::uint32_t>(config.fcIntervalCycles /
                                   config.meaIntervalCycles),
        32, 8, 64);
    checkEngineAccounting(engine);
}

} // namespace
} // namespace ramp
