/**
 * @file
 * Tests for address arithmetic, logging formatting, and the table
 * printer (src/common).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/types.hh"

namespace ramp
{
namespace
{

TEST(Types, PageAndLineArithmetic)
{
    EXPECT_EQ(pageOf(0), 0u);
    EXPECT_EQ(pageOf(4095), 0u);
    EXPECT_EQ(pageOf(4096), 1u);
    EXPECT_EQ(lineOf(0), 0u);
    EXPECT_EQ(lineOf(63), 0u);
    EXPECT_EQ(lineOf(64), 1u);
    EXPECT_EQ(lineInPage(0), 0u);
    EXPECT_EQ(lineInPage(64), 1u);
    EXPECT_EQ(lineInPage(4095), 63u);
    EXPECT_EQ(lineInPage(4096), 0u);
    EXPECT_EQ(pageBase(3), 3 * 4096u);
    EXPECT_EQ(lineBase(3), 3 * 64u);
    EXPECT_EQ(linesPerPage, 64u);
    EXPECT_EQ(pageBits, 4096u * 8);
}

TEST(Types, RoundTripAddressDecomposition)
{
    for (const Addr addr : {0ULL, 100ULL, 4096ULL, 123456789ULL}) {
        const Addr rebuilt = pageBase(pageOf(addr)) +
                             lineInPage(addr) * lineSize +
                             addr % lineSize;
        EXPECT_EQ(rebuilt, addr);
    }
}

TEST(Types, MemoryNames)
{
    EXPECT_STREQ(memoryName(MemoryId::HBM), "HBM");
    EXPECT_STREQ(memoryName(MemoryId::DDR), "DDR");
}

TEST(Logging, FormatMessageConcatenates)
{
    EXPECT_EQ(formatMessage("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(formatMessage(), "");
}

TEST(TextTable, FormatsAlignedColumns)
{
    TextTable table({"name", "value"});
    table.addRow({"x", "1"});
    table.addRow({"longer", "22"});
    std::ostringstream os;
    table.print(os, "title");
    const std::string out = os.str();
    EXPECT_NE(out.find("== title =="), std::string::npos);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_EQ(table.numRows(), 2u);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(1.2345, 2), "1.23");
    EXPECT_EQ(TextTable::num(std::uint64_t{42}), "42");
    EXPECT_EQ(TextTable::ratio(1.5), "1.50x");
    EXPECT_EQ(TextTable::percent(0.123), "12.3%");
    EXPECT_EQ(TextTable::percent(0.5, 0), "50%");
}

TEST(TextTableDeathTest, RowArityMismatchPanics)
{
    TextTable table({"a", "b"});
    EXPECT_DEATH(table.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace ramp
