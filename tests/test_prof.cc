/**
 * @file
 * Tests for the cycle-level hot-path profiler (src/prof).
 *
 * Locks the subsystem's contracts: nested scopes account self and
 * total cycles exactly under a deterministic cycle source, the
 * cross-thread merge conserves call counts, a disabled run
 * allocates no per-thread state, PMU-unavailable hosts degrade to
 * TSC-only profiles, the exporters (ramp-profile-v1 JSON, folded
 * stacks) stay self-consistent, the profile diff flags real
 * regressions and nothing else, and the analyzer's calls view is
 * byte-identical at --jobs 1 and --jobs 4.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "perf/json.hh"
#include "perf/prof_report.hh"
#include "prof/pmu.hh"
#include "prof/prof.hh"
#include "prof/tsc.hh"
#include "runner/pool.hh"

namespace ramp
{
namespace
{

/** Deterministic cycle source: every read advances 100 cycles. */
std::atomic<std::uint64_t> fakeClock{0};

std::uint64_t
fakeCycles()
{
    return fakeClock.fetch_add(100, std::memory_order_relaxed);
}

/** Fresh, enabled profiler per test; everything off afterwards. */
class ProfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        prof::reset();
        prof::setEnabled(true);
    }

    void TearDown() override
    {
        prof::setEnabled(false);
        prof::detail::setCycleSourceForTest(nullptr);
        prof::pmuForceUnavailableForTest(false);
        prof::reset();
    }

    /** The snapshot phase with the given path, or nullptr. */
    static const prof::PhaseStat *
    findPhase(const prof::ProfileSnapshot &snap,
              const std::string &path)
    {
        for (const prof::PhaseStat &phase : snap.phases)
            if (phase.path == path)
                return &phase;
        return nullptr;
    }
};

TEST_F(ProfTest, NestedScopesAccountSelfAndTotalExactly)
{
    fakeClock.store(0);
    prof::detail::setCycleSourceForTest(&fakeCycles);

    {
        RAMP_PROF_SCOPE(outer, "outer"); // start read: 0
        {
            RAMP_PROF_SCOPE(inner, "inner"); // start read: 100
        } // stop read: 200 -> inner total 100
    } // stop read: 300 -> outer total 300

    const auto snap = prof::snapshot();
    const auto *outer = findPhase(snap, "outer");
    const auto *inner = findPhase(snap, "outer;inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->calls, 1u);
    EXPECT_EQ(inner->calls, 1u);
    EXPECT_EQ(outer->totalCycles, 300u);
    EXPECT_EQ(inner->totalCycles, 100u);
    EXPECT_EQ(inner->selfCycles, 100u);
    // Self excludes exactly the child's total.
    EXPECT_EQ(outer->selfCycles, 200u);
}

TEST_F(ProfTest, RepeatedAndSiblingScopesAccumulate)
{
    fakeClock.store(0);
    prof::detail::setCycleSourceForTest(&fakeCycles);

    for (int i = 0; i < 3; ++i) {
        RAMP_PROF_SCOPE(work, "work");
        {
            RAMP_PROF_SCOPE(a, "a");
        }
        {
            RAMP_PROF_SCOPE(b, "b");
        }
    }

    const auto snap = prof::snapshot();
    const auto *work = findPhase(snap, "work");
    const auto *a = findPhase(snap, "work;a");
    const auto *b = findPhase(snap, "work;b");
    ASSERT_NE(work, nullptr);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(work->calls, 3u);
    EXPECT_EQ(a->calls, 3u);
    EXPECT_EQ(b->calls, 3u);
    // Per iteration: work spans 5 intervals of 100, a and b one
    // each; self = total - children exactly.
    EXPECT_EQ(work->totalCycles, 3u * 500u);
    EXPECT_EQ(a->totalCycles, 3u * 100u);
    EXPECT_EQ(b->totalCycles, 3u * 100u);
    EXPECT_EQ(work->selfCycles,
              work->totalCycles - a->totalCycles -
                  b->totalCycles);
}

TEST_F(ProfTest, ThreadMergeConservesCallCounts)
{
    constexpr unsigned threads = 4;
    constexpr unsigned iterations = 25;

    std::vector<std::thread> workers;
    for (unsigned t = 0; t < threads; ++t) {
        workers.emplace_back([] {
            for (unsigned i = 0; i < iterations; ++i) {
                RAMP_PROF_SCOPE(outer, "merge.outer");
                RAMP_PROF_SCOPE(inner, "merge.inner");
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    const auto snap = prof::snapshot();
    const auto *outer = findPhase(snap, "merge.outer");
    const auto *inner =
        findPhase(snap, "merge.outer;merge.inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // The merge is exact: no call is lost or double-counted at
    // any interleaving.
    EXPECT_EQ(outer->calls, threads * iterations);
    EXPECT_EQ(inner->calls, threads * iterations);
    EXPECT_GE(outer->totalCycles, inner->totalCycles);
    EXPECT_EQ(outer->selfCycles,
              outer->totalCycles - inner->totalCycles);
}

TEST_F(ProfTest, DisabledScopesAllocateNoThreadState)
{
    prof::setEnabled(false);
    const std::size_t states_before =
        prof::threadStateCountForTest();

    // A fresh thread running only disabled scopes must never
    // register per-thread state (the disabled path is one relaxed
    // load and a branch, no allocation).
    std::thread worker([] {
        for (int i = 0; i < 1000; ++i) {
            RAMP_PROF_SCOPE(scope, "disabled.phase");
            RAMP_PROF_SCOPE_PMU(pmu_scope, "disabled.pmu");
        }
    });
    worker.join();

    EXPECT_EQ(prof::threadStateCountForTest(), states_before);
    EXPECT_EQ(findPhase(prof::snapshot(), "disabled.phase"),
              nullptr);
}

TEST_F(ProfTest, PmuUnavailableDegradesToTscOnly)
{
    prof::pmuForceUnavailableForTest(true);
    fakeClock.store(0);
    prof::detail::setCycleSourceForTest(&fakeCycles);

    {
        RAMP_PROF_SCOPE_PMU(scope, "pmu.phase");
    }

    const auto snap = prof::snapshot();
    EXPECT_FALSE(snap.pmuAvailable);
    const auto *phase = findPhase(snap, "pmu.phase");
    ASSERT_NE(phase, nullptr);
    // Cycles still recorded; PMU aggregates empty, not garbage.
    EXPECT_EQ(phase->calls, 1u);
    EXPECT_EQ(phase->totalCycles, 100u);
    EXPECT_EQ(phase->pmuCalls, 0u);
    EXPECT_EQ(phase->pmuInstructions, 0u);

    // The rendered document says so too.
    perf::JsonValue json;
    std::string error;
    ASSERT_TRUE(
        perf::parseJson(prof::profileJson("test", 1), json, error))
        << error;
    const perf::JsonValue *pmu = json.find("pmu");
    ASSERT_NE(pmu, nullptr);
    EXPECT_FALSE(pmu->boolOr("available", true));
}

TEST_F(ProfTest, ExportersStaySelfConsistent)
{
    fakeClock.store(0);
    prof::detail::setCycleSourceForTest(&fakeCycles);
    {
        RAMP_PROF_SCOPE(outer, "export.outer");
        RAMP_PROF_SCOPE(inner, "export.inner");
    }

    // The JSON document parses back to the same snapshot.
    perf::ProfileDoc doc;
    std::string error;
    perf::JsonValue json;
    ASSERT_TRUE(
        perf::parseJson(prof::profileJson("test", 2), json, error))
        << error;
    ASSERT_TRUE(perf::parseProfileDoc(json, doc, error)) << error;
    EXPECT_EQ(doc.tool, "test");
    EXPECT_EQ(doc.jobs, 2u);
    EXPECT_GT(doc.tscHz, 0.0);
    ASSERT_EQ(doc.phases.size(), 2u);
    EXPECT_EQ(doc.phases[0].path, "export.outer");
    EXPECT_EQ(doc.phases[1].path, "export.outer;export.inner");

    // Folded stacks carry exactly the nonzero self cycles.
    std::uint64_t folded_sum = 0;
    std::istringstream folded(prof::foldedStacks());
    std::string path;
    std::uint64_t self = 0;
    while (folded >> path >> self)
        folded_sum += self;
    std::uint64_t snap_sum = 0;
    for (const auto &phase : prof::snapshot().phases)
        snap_sum += phase.selfCycles;
    EXPECT_EQ(folded_sum, snap_sum);
}

/** Build a minimal synthetic profile document. */
perf::ProfileDoc
syntheticProfile(std::uint64_t hot_self)
{
    const std::string text =
        "{\"schema\": \"ramp-profile-v1\", \"tool\": \"synthetic\","
        " \"jobs\": 1,"
        " \"host\": {\"cpu_model\": \"test\", \"tsc_hz\": 1e9},"
        " \"pmu\": {\"available\": false},"
        " \"phases\": ["
        "  {\"path\": \"hot\", \"name\": \"hot\", \"depth\": 0,"
        "   \"calls\": 10, \"total_cycles\": " +
        std::to_string(hot_self) +
        ", \"self_cycles\": " + std::to_string(hot_self) +
        "},"
        "  {\"path\": \"cold\", \"name\": \"cold\", \"depth\": 0,"
        "   \"calls\": 10, \"total_cycles\": 5000000,"
        "   \"self_cycles\": 5000000}"
        " ]}";
    perf::JsonValue json;
    perf::ProfileDoc doc;
    std::string error;
    EXPECT_TRUE(perf::parseJson(text, json, error)) << error;
    EXPECT_TRUE(perf::parseProfileDoc(json, doc, error)) << error;
    return doc;
}

TEST(ProfDiff, IdenticalProfilesShowZeroDelta)
{
    const auto base = syntheticProfile(100000000);
    const auto deltas = perf::diffProfiles(base, base, 25, 1000000);
    ASSERT_EQ(deltas.size(), 2u);
    for (const auto &delta : deltas) {
        EXPECT_EQ(delta.baseSelf, delta.candSelf);
        EXPECT_EQ(delta.deltaPct, 0.0);
        EXPECT_FALSE(delta.significant);
        EXPECT_FALSE(delta.regressed);
    }
}

TEST(ProfDiff, DoubledPhaseIsFlaggedSlower)
{
    const auto base = syntheticProfile(100000000);
    const auto cand = syntheticProfile(200000000);
    const auto deltas = perf::diffProfiles(base, cand, 25, 1000000);
    ASSERT_EQ(deltas.size(), 2u);
    // Path-sorted join: "cold" first, then "hot".
    EXPECT_EQ(deltas[0].path, "cold");
    EXPECT_FALSE(deltas[0].significant);
    EXPECT_EQ(deltas[1].path, "hot");
    EXPECT_TRUE(deltas[1].significant);
    EXPECT_TRUE(deltas[1].regressed);
    EXPECT_NEAR(deltas[1].deltaPct, 100.0, 1e-9);

    // Below the cycle floor nothing fires, whatever the percent.
    const auto small_base = syntheticProfile(100);
    const auto small_cand = syntheticProfile(200);
    for (const auto &delta :
         perf::diffProfiles(small_base, small_cand, 25, 1000000))
        EXPECT_FALSE(delta.significant);
}

TEST(ProfDiff, NewPhaseReportedAsNew)
{
    auto base = syntheticProfile(100000000);
    const auto cand = syntheticProfile(100000000);
    base.phases.pop_back(); // drop "cold" from the baseline
    const auto deltas = perf::diffProfiles(base, cand, 25, 1000000);
    ASSERT_EQ(deltas.size(), 2u);
    EXPECT_EQ(deltas[0].path, "cold");
    EXPECT_FALSE(deltas[0].inBase);
    EXPECT_TRUE(deltas[0].inCand);
    EXPECT_TRUE(deltas[0].significant);
    EXPECT_TRUE(deltas[0].regressed);
}

TEST_F(ProfTest, CallsViewIsInvariantAcrossJobs)
{
    const auto run_campaign = [](unsigned jobs) {
        prof::reset();
        runner::ThreadPool pool(jobs);
        pool.runIndexed(64, [](std::size_t index) {
            RAMP_PROF_SCOPE(task, "campaign.task");
            for (std::size_t i = 0; i <= index % 3; ++i) {
                RAMP_PROF_SCOPE(step, "campaign.step");
            }
        });
        perf::JsonValue json;
        perf::ProfileDoc doc;
        std::string error;
        EXPECT_TRUE(perf::parseJson(
            prof::profileJson("campaign", jobs), json, error))
            << error;
        EXPECT_TRUE(perf::parseProfileDoc(json, doc, error))
            << error;
        return perf::renderCalls(doc);
    };

    const std::string serial = run_campaign(1);
    const std::string parallel = run_campaign(4);
    EXPECT_FALSE(serial.empty());
    // Aggregated structure (phase paths + call counts) must be
    // byte-identical at any pool width; only raw cycles may move.
    EXPECT_EQ(serial, parallel);
}

} // namespace
} // namespace ramp
