/**
 * @file
 * Tests for the adaptive region monitor, the declarative scheme
 * engine, and the region-granularity placement builders
 * (src/region).
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.hh"
#include "placement/policies.hh"
#include "placement/profile.hh"
#include "region/engine.hh"
#include "region/region.hh"
#include "region/scheme.hh"

namespace ramp
{
namespace
{

/** The structural invariants every adaptation pass must keep. */
void
expectRegionInvariants(const RegionMonitor &monitor)
{
    const auto &regions = monitor.regions();
    ASSERT_FALSE(regions.empty());
    EXPECT_LE(regions.size(), monitor.config().maxRegions);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        EXPECT_GE(regions[i].pages, 1u);
        if (i > 0) {
            // Sorted and pairwise disjoint.
            EXPECT_LE(regions[i - 1].end(), regions[i].first);
        }
    }
}

double
totalHotness(const RegionMonitor &monitor)
{
    double total = 0;
    for (const Region &region : monitor.regions())
        total += region.hotness();
    return total;
}

RegionConfig
quietConfig()
{
    RegionConfig config;
    config.ledger = false;
    return config;
}

TEST(RegionMonitor, InitFootprintCoversSpanExactly)
{
    RegionConfig config = quietConfig();
    config.minRegions = 4;
    config.maxRegions = 64;
    RegionMonitor monitor(config);
    monitor.initFootprint(100, 1000);
    expectRegionInvariants(monitor);
    // min(maxRegions, minRegions * 2, pages) initial regions.
    EXPECT_EQ(monitor.regions().size(), 8u);
    EXPECT_EQ(monitor.regions().front().first, 100u);
    EXPECT_EQ(monitor.regions().back().end(), 1100u);
    std::uint64_t covered = 0;
    for (const Region &region : monitor.regions())
        covered += region.pages;
    EXPECT_EQ(covered, 1000u);
}

TEST(RegionMonitor, IndexOfFindsCoveringRegion)
{
    RegionConfig config = quietConfig();
    config.minRegions = 2;
    config.maxRegions = 4;
    RegionMonitor monitor(config);
    monitor.initFootprint(10, 40); // 4 regions of 10 pages
    EXPECT_EQ(monitor.indexOf(10), 0u);
    EXPECT_EQ(monitor.indexOf(19), 0u);
    EXPECT_EQ(monitor.indexOf(20), 1u);
    EXPECT_EQ(monitor.indexOf(49), 3u);
    EXPECT_EQ(monitor.indexOf(9), RegionMonitor::npos);
    EXPECT_EQ(monitor.indexOf(50), RegionMonitor::npos);
}

TEST(RegionMonitor, RecordAccessCountsIntoCoveringRegion)
{
    RegionConfig config = quietConfig();
    config.minRegions = 2;
    config.maxRegions = 4;
    RegionMonitor monitor(config);
    monitor.initFootprint(0, 40);
    monitor.recordAccess(5, false);
    monitor.recordAccess(5, false);
    monitor.recordAccess(5, true);
    monitor.recordAccess(35, true);
    EXPECT_EQ(monitor.regions()[0].epochReads, 2u);
    EXPECT_EQ(monitor.regions()[0].epochWrites, 1u);
    EXPECT_EQ(monitor.regions()[3].epochWrites, 1u);
}

TEST(RegionMonitor, UncoveredAccessGrowsCoverage)
{
    RegionConfig config = quietConfig();
    config.minRegions = 2;
    config.maxRegions = 4;
    RegionMonitor monitor(config);
    monitor.initFootprint(100, 40);
    // Below the covered span: the front region grows backward.
    monitor.recordAccess(90, false);
    EXPECT_EQ(monitor.regions().front().first, 90u);
    EXPECT_EQ(monitor.indexOf(90), 0u);
    // Past the covered span: the last region grows forward.
    monitor.recordAccess(150, true);
    EXPECT_EQ(monitor.regions().back().end(), 151u);
    expectRegionInvariants(monitor);
}

TEST(RegionMonitor, AdaptationKeepsInvariantsAndConservesCounts)
{
    RegionConfig config = quietConfig();
    config.minRegions = 4;
    config.maxRegions = 64;
    config.decay = 1.0; // full history: totals must be conserved
    RegionMonitor monitor(config);
    monitor.initFootprint(0, 4096);

    Rng rng(42);
    ZipfSampler zipf(4096, 0.9);
    std::uint64_t recorded = 0;
    for (int epoch = 0; epoch < 12; ++epoch) {
        for (int i = 0; i < 2000; ++i) {
            monitor.recordAccess(
                static_cast<PageId>(zipf.sample(rng)),
                rng.nextBool(0.3));
            ++recorded;
        }
        monitor.endEpoch();
        expectRegionInvariants(monitor);
        // Merges sum and splits apportion, so with decay = 1.0 the
        // aggregate access mass equals everything ever recorded.
        EXPECT_NEAR(totalHotness(monitor),
                    static_cast<double>(recorded),
                    1e-6 * static_cast<double>(recorded));
    }
    EXPECT_GT(monitor.merges(), 0u);
    EXPECT_GT(monitor.splits(), 0u);
    EXPECT_EQ(monitor.epochs(), 12u);
}

TEST(RegionMonitor, RegionBudgetIsBounded)
{
    RegionConfig config = quietConfig();
    config.minRegions = 2;
    config.maxRegions = 16;
    RegionMonitor monitor(config);
    monitor.initFootprint(0, 100'000);
    Rng rng(7);
    for (int epoch = 0; epoch < 20; ++epoch) {
        for (int i = 0; i < 500; ++i)
            monitor.recordAccess(rng.nextRange(100'000),
                                 rng.nextBool(0.5));
        monitor.endEpoch();
        EXPECT_LE(monitor.regions().size(), 16u);
        EXPECT_GE(monitor.regions().size(), 1u);
    }
    // The span table is provisioned for the budget, not the
    // footprint: tracked bytes never depend on the page count.
    EXPECT_EQ(monitor.trackedBytes(), 16u * sizeof(Region));
}

TEST(RegionMonitor, InitFromProfileIsPerPageWhenBudgetAllows)
{
    PageProfile profile;
    profile.setStats(10, {5, 3, 0.25});
    profile.setStats(20, {9, 1, 0.75});
    profile.setStats(30, {0, 7, 0.5});

    RegionConfig config = quietConfig();
    config.maxRegions = 1024;
    RegionMonitor monitor(config);
    monitor.initFromProfile(profile);

    ASSERT_EQ(monitor.regions().size(), 3u);
    const Region &first = monitor.regions().front();
    EXPECT_EQ(first.first, 10u);
    EXPECT_EQ(first.pages, 1u);
    EXPECT_DOUBLE_EQ(first.reads, 5.0);
    EXPECT_DOUBLE_EQ(first.writes, 3.0);
    EXPECT_DOUBLE_EQ(first.avf, 0.25);
    expectRegionInvariants(monitor);
}

TEST(RegionMonitor, DeterministicAcrossIdenticalRuns)
{
    const auto run = [] {
        RegionConfig config;
        config.minRegions = 4;
        config.maxRegions = 32;
        config.ledger = false;
        RegionMonitor monitor(config);
        monitor.initFootprint(0, 10'000);
        Rng rng(99);
        ZipfSampler zipf(10'000, 0.8);
        for (int epoch = 0; epoch < 8; ++epoch) {
            for (int i = 0; i < 1000; ++i)
                monitor.recordAccess(
                    static_cast<PageId>(zipf.sample(rng)),
                    rng.nextBool(0.3));
            monitor.endEpoch();
        }
        return monitor;
    };
    const RegionMonitor a = run();
    const RegionMonitor b = run();
    ASSERT_EQ(a.regions().size(), b.regions().size());
    for (std::size_t i = 0; i < a.regions().size(); ++i) {
        EXPECT_EQ(a.regions()[i].first, b.regions()[i].first);
        EXPECT_EQ(a.regions()[i].pages, b.regions()[i].pages);
        EXPECT_DOUBLE_EQ(a.regions()[i].reads, b.regions()[i].reads);
        EXPECT_DOUBLE_EQ(a.regions()[i].writes,
                         b.regions()[i].writes);
    }
    EXPECT_EQ(a.merges(), b.merges());
    EXPECT_EQ(a.splits(), b.splits());
}

TEST(RegionSchemes, ParseFormatRoundTrip)
{
    const std::string text =
        "promote:hot,lowrisk,quota=4;"
        "demote:cold,age>=2,quota=4;"
        "pin:density>=12.5,avf<=0.1,pages>=8";
    std::string error;
    const auto schemes = parseRegionSchemes(text, error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(schemes.size(), 3u);
    EXPECT_EQ(schemes[0].action, RegionAction::Promote);
    EXPECT_TRUE(schemes[0].requireHot);
    EXPECT_TRUE(schemes[0].requireLowRisk);
    EXPECT_EQ(schemes[0].quota, 4u);
    EXPECT_EQ(schemes[1].action, RegionAction::Demote);
    EXPECT_TRUE(schemes[1].requireCold);
    EXPECT_EQ(schemes[1].minAge, 2u);
    EXPECT_EQ(schemes[2].action, RegionAction::Pin);
    EXPECT_TRUE(schemes[2].hasMinDensity);
    EXPECT_DOUBLE_EQ(schemes[2].minDensity, 12.5);
    EXPECT_TRUE(schemes[2].hasMaxAvf);
    EXPECT_EQ(schemes[2].minPages, 8u);

    // The canonical spelling re-parses to the same schemes.
    std::string error2;
    const auto reparsed =
        parseRegionSchemes(formatRegionSchemes(schemes), error2);
    ASSERT_TRUE(error2.empty()) << error2;
    ASSERT_EQ(reparsed.size(), schemes.size());
    for (std::size_t i = 0; i < schemes.size(); ++i)
        EXPECT_EQ(formatRegionScheme(reparsed[i]),
                  formatRegionScheme(schemes[i]));
}

TEST(RegionSchemes, ParseRejectsBadGrammar)
{
    std::string error;
    EXPECT_TRUE(parseRegionSchemes("evict:hot", error).empty());
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_TRUE(parseRegionSchemes("promote:sideways", error).empty());
    EXPECT_FALSE(error.empty());
    error.clear();
    EXPECT_TRUE(parseRegionSchemes("promote:pages>=x", error).empty());
    EXPECT_FALSE(error.empty());
}

TEST(RegionSchemes, MatchesRelativeAndAbsolutePredicates)
{
    Region region;
    region.first = 0;
    region.pages = 10;
    region.reads = 80;
    region.writes = 20;
    region.avf = 0.2;
    region.age = 3;

    RegionScheme hot;
    hot.requireHot = true; // density 10 vs mean 5
    EXPECT_TRUE(hot.matches(region, 5.0, 0.5));
    EXPECT_FALSE(hot.matches(region, 15.0, 0.5));

    RegionScheme risky;
    risky.requireHighRisk = true; // avf 0.2 vs mean 0.1
    EXPECT_TRUE(risky.matches(region, 5.0, 0.1));
    EXPECT_FALSE(risky.matches(region, 5.0, 0.5));

    RegionScheme aged;
    aged.minAge = 4;
    EXPECT_FALSE(aged.matches(region, 5.0, 0.5));
    aged.minAge = 3;
    EXPECT_TRUE(aged.matches(region, 5.0, 0.5));
}

/**
 * A four-region monitor that endEpoch leaves structurally alone
 * (minRegions == maxRegions == initial count), with regions 0-1 hot
 * and 2-3 idle.
 */
RegionMonitor
stableQuadrantMonitor()
{
    RegionConfig config = quietConfig();
    config.minRegions = 4;
    config.maxRegions = 4;
    config.decay = 1.0;
    RegionMonitor monitor(config);
    monitor.initFootprint(0, 40); // 4 regions of 10 pages
    for (int i = 0; i < 100; ++i)
        monitor.recordAccess(static_cast<PageId>(i % 10), false);
    for (int i = 0; i < 80; ++i)
        monitor.recordAccess(static_cast<PageId>(10 + i % 10),
                             i % 2 == 0);
    monitor.endEpoch();
    return monitor;
}

TEST(SchemeEngine, QuotaBoundsActionsPerEpoch)
{
    const RegionMonitor monitor = stableQuadrantMonitor();
    std::string error;
    const SchemeEngine engine(
        parseRegionSchemes("promote:hot,quota=1", error));
    ASSERT_TRUE(error.empty()) << error;

    PlacementMap map(100);
    const auto ops = engine.evaluate(monitor, map);
    // Two regions are hot (densities 10 and 8 vs mean 4.5) but the
    // quota admits one per epoch; address order makes it region 0.
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].action, RegionAction::Promote);
    EXPECT_EQ(ops[0].first, 0u);
    EXPECT_EQ(ops[0].pages, 10u);
}

TEST(SchemeEngine, DemotionsOrderedBeforePromotions)
{
    const RegionMonitor monitor = stableQuadrantMonitor();
    // Park the cold regions in HBM so the demotion has work to do.
    PlacementMap map(100);
    map.placeRange(20, 20, MemoryId::HBM);

    std::string error;
    const SchemeEngine engine(parseRegionSchemes(
        "promote:hot,quota=1;demote:cold,quota=1", error));
    ASSERT_TRUE(error.empty()) << error;

    const auto ops = engine.evaluate(monitor, map);
    // Declared promote-first, but demotions sort ahead so capacity
    // frees before it is claimed.
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[0].action, RegionAction::Demote);
    EXPECT_EQ(ops[1].action, RegionAction::Promote);
}

TEST(SchemeEngine, SuppressesOpsWithNothingToMove)
{
    const RegionMonitor monitor = stableQuadrantMonitor();
    PlacementMap map(100);
    map.placeRange(0, 10, MemoryId::HBM); // hot region resident

    std::string error;
    const SchemeEngine engine(
        parseRegionSchemes("promote:hot,quota=1", error));
    ASSERT_TRUE(error.empty()) << error;

    // Region 0 matches but is already resident; region 1 (also hot)
    // takes the quota slot instead.
    const auto ops = engine.evaluate(monitor, map);
    ASSERT_EQ(ops.size(), 1u);
    EXPECT_EQ(ops[0].first, 10u);
}

/** A deterministic scattered profile exercising every quadrant. */
PageProfile
scatteredProfile()
{
    PageProfile profile;
    Rng rng(2018);
    for (PageId page = 0; page < 600; page += 7) {
        PageStats stats;
        stats.reads = rng.nextRange(200);
        stats.writes = rng.nextRange(100);
        stats.avf = static_cast<double>(rng.nextRange(1000)) / 1000.0;
        profile.setStats(page, stats);
    }
    return profile;
}

TEST(RegionPlacement, PerPageRegionsMatchPagePolicies)
{
    const PageProfile profile = scatteredProfile();
    RegionConfig config = quietConfig();
    config.maxRegions = 4096; // >= footprint: one page per region

    for (const StaticPolicy policy :
         {StaticPolicy::PerfFocused, StaticPolicy::ReliabilityFocused,
          StaticPolicy::Balanced, StaticPolicy::WrRatio,
          StaticPolicy::Wr2Ratio}) {
        const PlacementMap page_map =
            buildStaticPlacement(policy, profile, 16);
        const PlacementMap region_map =
            buildRegionStaticPlacement(policy, profile, config, 16);
        const auto pages = page_map.hbmPages();
        const auto regions = region_map.hbmPages();
        EXPECT_EQ(std::set<PageId>(pages.begin(), pages.end()),
                  std::set<PageId>(regions.begin(), regions.end()))
            << "policy " << policyName(policy);
    }
}

TEST(RegionPlacement, DdrOnlyPlacesNothing)
{
    const PlacementMap map = buildRegionStaticPlacement(
        StaticPolicy::DdrOnly, scatteredProfile(), quietConfig(), 16);
    EXPECT_TRUE(map.hbmPages().empty());
}

TEST(RegionPlacement, RespectsHbmCapacity)
{
    const PageProfile profile = scatteredProfile();
    RegionConfig config = quietConfig();
    config.minRegions = 2;
    config.maxRegions = 8; // coarse regions spanning many pages
    const PlacementMap map = buildRegionStaticPlacement(
        StaticPolicy::PerfFocused, profile, config, 16);
    EXPECT_LE(map.hbmUsedPages(), 16u);
    EXPECT_GT(map.hbmUsedPages(), 0u);
}

TEST(RegionEngine, EmitsDecisionsAtIntervals)
{
    RegionConfig config = quietConfig();
    config.minRegions = 4;
    config.maxRegions = 4;
    RegionMigrationEngine engine(1000, config,
                                 defaultRegionSchemes());
    engine.seedFootprint(0, 40);
    PlacementMap map(100);
    for (int i = 0; i < 200; ++i)
        engine.onAccess(static_cast<PageId>(i % 10), false,
                        map.memoryOf(static_cast<PageId>(i % 10)));
    const MigrationDecision decision = engine.onInterval(1000, map);
    // The hot region qualifies for promotion under the default
    // schemes (everything is low-risk with zero AVF seeds).
    ASSERT_FALSE(decision.regionOps.empty());
    EXPECT_EQ(decision.regionOps[0].action, RegionAction::Promote);
    EXPECT_GT(decision.pagesMoved(), 0u);
    EXPECT_EQ(engine.monitor().epochs(), 1u);
}

} // namespace
} // namespace ramp
