/**
 * @file
 * Tests for the performance-observability layer (src/perf): the
 * resource sampler, the steady-state microbenchmark framework, the
 * JSON reader, the BENCH_<tool>.json emitter, and the regression
 * comparator — plus the Harness integration that flushes a BENCH
 * document even when the campaign is cancelled or runs under the
 * pass watchdog.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hma/experiment.hh"
#include "perf/bench_report.hh"
#include "perf/json.hh"
#include "perf/microbench.hh"
#include "perf/resource.hh"
#include "runner/harness.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{
namespace
{

using perf::BenchOptions;
using perf::BenchReportSpec;
using perf::DiffOptions;
using perf::JsonValue;
using perf::Microbench;
using runner::Harness;
using runner::PassDesc;
using runner::PassError;
using runner::PassErrorCode;
using runner::RunnerOptions;

/** The perf layer switches telemetry on; leave no global residue. */
class PerfTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        telemetry::resetAll();
        telemetry::setEnabled(true);
    }

    void TearDown() override
    {
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
};

TEST(ResourceUsage, ReadsLiveAndPeakRss)
{
    const auto usage = perf::readResourceUsage();
    // A running gtest binary is resident well past a megabyte.
    EXPECT_GT(usage.rssBytes, 1u << 20);
    EXPECT_GE(usage.peakRssBytes, usage.rssBytes);
    EXPECT_GE(usage.userCpuSeconds + usage.sysCpuSeconds, 0.0);
}

TEST_F(PerfTest, SamplerObservesAndJoinsCleanly)
{
    perf::ResourceSampler sampler(std::chrono::milliseconds(5));
    // Touch some memory so the series has something to see.
    std::vector<char> ballast(8u << 20, 1);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.stop();
    sampler.stop(); // idempotent: the second join is a no-op

    const auto summary = sampler.summary();
    EXPECT_GE(summary.samples, 2u);
    EXPECT_GT(summary.peakRssBytes, 1u << 20);
    EXPECT_GT(summary.rssSeries.mean(), 0.0);
    EXPECT_GE(summary.peakRssBytes,
              static_cast<std::uint64_t>(summary.rssSeries.max()));

    // The sampler published its gauges through telemetry.
    const auto snap = telemetry::metrics().snapshot();
    EXPECT_GT(snap.gauges.at("proc.rss_bytes"), 0.0);
    EXPECT_GT(snap.gauges.at("proc.peak_rss_bytes"), 0.0);
    (void)ballast;
}

TEST(ResourceSampler, StopInsideFirstPeriodStillSamples)
{
    perf::ResourceSampler sampler(std::chrono::minutes(10));
    sampler.stop(); // must not wait out the period
    EXPECT_GE(sampler.summary().samples, 1u);
}

TEST(Microbench, MeasuresStatsAndThroughput)
{
    Microbench suite;
    suite.add("spin", "items", [] {
        volatile std::uint64_t x = 0;
        for (int i = 0; i < 20000; ++i)
            x = x + static_cast<std::uint64_t>(i);
        return std::uint64_t{1000};
    });

    BenchOptions options;
    options.iterations = 6;
    options.maxWarmupIterations = 8;
    const auto results = suite.run(options);
    ASSERT_EQ(results.size(), 1u);
    const auto &r = results[0];
    EXPECT_EQ(r.name, "spin");
    EXPECT_EQ(r.unit, "items");
    EXPECT_EQ(r.itemsPerIteration, 1000u);
    EXPECT_EQ(r.iterations, 6u);
    EXPECT_LE(r.warmupIterations, 8u);
    EXPECT_GT(r.meanSeconds, 0.0);
    EXPECT_LE(r.minSeconds, r.meanSeconds);
    EXPECT_GE(r.maxSeconds, r.meanSeconds);
    EXPECT_GE(r.stddevSeconds, 0.0);
    EXPECT_GE(r.ci95Seconds, 0.0);
    EXPECT_DOUBLE_EQ(r.itemsPerSecond, 1000.0 / r.minSeconds);
}

TEST(Microbench, SubsetSelectionAndOrder)
{
    Microbench suite;
    for (const char *name : {"alpha", "beta", "gamma"})
        suite.add(name, "items", [] { return std::uint64_t{1}; });
    EXPECT_EQ(suite.names(),
              (std::vector<std::string>{"alpha", "beta", "gamma"}));

    BenchOptions options;
    options.iterations = 1;
    options.maxWarmupIterations = 1;
    const auto results = suite.run(options, {"gamma", "alpha"});
    ASSERT_EQ(results.size(), 2u);
    // Registration order wins, not selection order.
    EXPECT_EQ(results[0].name, "alpha");
    EXPECT_EQ(results[1].name, "gamma");
}

TEST(Microbench, BudgetCapsIterations)
{
    Microbench suite;
    suite.add("slow", "items", [] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        return std::uint64_t{1};
    });
    BenchOptions options;
    options.iterations = 1000;
    options.maxWarmupIterations = 2;
    options.maxSecondsPerCase = 0.05;
    const auto results = suite.run(options);
    ASSERT_EQ(results.size(), 1u);
    // The budget stopped it long before 1000, but the floor of 3
    // measured iterations still holds.
    EXPECT_LT(results[0].iterations, 1000u);
    EXPECT_GE(results[0].iterations, 3u);
}

TEST(MicrobenchDeath, RejectsDuplicateNames)
{
    Microbench suite;
    suite.add("dup", "items", [] { return std::uint64_t{1}; });
    EXPECT_DEATH(
        suite.add("dup", "items", [] { return std::uint64_t{1}; }),
        "dup");
}

TEST(Json, ParsesScalarsContainersAndEscapes)
{
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(perf::parseJson(
        R"({"a": 1.5, "b": [true, null, -2e3], "c": "x\n\"yA"})",
        doc, error))
        << error;
    EXPECT_DOUBLE_EQ(doc.numberOr("a", 0), 1.5);
    const JsonValue *b = doc.find("b");
    ASSERT_NE(b, nullptr);
    ASSERT_EQ(b->array.size(), 3u);
    EXPECT_TRUE(b->array[0].boolean);
    EXPECT_TRUE(b->array[1].isNull());
    EXPECT_DOUBLE_EQ(b->array[2].number, -2000.0);
    EXPECT_EQ(doc.stringOr("c", ""), "x\n\"yA");
}

TEST(Json, DecodesUnicodeEscapesAsUtf8)
{
    JsonValue doc;
    std::string error;
    // ASCII, 2-byte, 3-byte, and a surrogate pair (4-byte):
    // A, e-acute, euro sign, and an emoji outside the BMP.
    ASSERT_TRUE(perf::parseJson(
        "{\"s\": \"\\u0041\\u00e9\\u20ac\\ud83d\\ude00\"}", doc,
        error))
        << error;
    EXPECT_EQ(doc.stringOr("s", ""),
              "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80");
    // Upper-case hex digits decode identically.
    ASSERT_TRUE(
        perf::parseJson("[\"\\u20AC\"]", doc, error))
        << error;
    EXPECT_EQ(doc.array.at(0).string, "\xe2\x82\xac");
}

TEST(Json, RejectsBrokenUnicodeEscapes)
{
    JsonValue doc;
    std::string error;
    // Non-hex digit.
    EXPECT_FALSE(perf::parseJson(R"(["\u12zf"])", doc, error));
    // Truncated escape at end of input.
    EXPECT_FALSE(perf::parseJson(R"(["\u12)", doc, error));
    // High surrogate with no low surrogate after it.
    EXPECT_FALSE(perf::parseJson(R"(["\ud83dx"])", doc, error));
    // High surrogate followed by a non-surrogate escape.
    EXPECT_FALSE(perf::parseJson(R"(["\ud83dA"])", doc, error));
    // Low surrogate on its own.
    EXPECT_FALSE(perf::parseJson(R"(["\ude00"])", doc, error));
    EXPECT_FALSE(error.empty());
}

TEST(Json, RejectsMalformedAndTrailingGarbage)
{
    JsonValue doc;
    std::string error;
    EXPECT_FALSE(perf::parseJson("{\"a\": }", doc, error));
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(perf::parseJson("[1, 2] tail", doc, error));
    EXPECT_FALSE(perf::parseJson("", doc, error));
    EXPECT_FALSE(perf::parseJson("{\"a\": 1", doc, error));
}

/** A report spec with deterministic, nontrivial content. */
BenchReportSpec
sampleSpec()
{
    BenchReportSpec spec;
    spec.tool = "unit_tool";
    spec.jobs = 2;
    spec.wallSeconds = 2.0;
    spec.resources.samples = 3;
    spec.resources.peakRssBytes = 64u << 20;
    spec.resources.rssSeries.add(50e6);
    spec.resources.rssSeries.add(60e6);
    spec.resources.userCpuSeconds = 1.5;
    spec.resources.sysCpuSeconds = 0.25;
    spec.metrics.counters["hma.accesses.hbm"] = 600;
    spec.metrics.counters["hma.accesses.ddr"] = 400;
    spec.metrics.counters["faultsim.trials"] = 2000;
    spec.metrics.counters["pool.tasks"] = 8;
    auto hist = telemetry::FixedHistogram::linear(0.0, 1.0, 10);
    for (int i = 0; i < 100; ++i)
        hist.add(i / 100.0);
    spec.metrics.histograms.emplace("pool.task_seconds", hist);
    spec.passes.count = 4;
    spec.passes.ok = 4;
    spec.passes.seconds.add(0.5);
    spec.passes.seconds.add(0.7);
    perf::BenchResult micro;
    micro.name = "kernel";
    micro.unit = "items";
    micro.itemsPerIteration = 100;
    micro.iterations = 10;
    micro.meanSeconds = 0.01;
    micro.minSeconds = 0.008;
    micro.maxSeconds = 0.012;
    micro.itemsPerSecond = 100 / 0.008;
    spec.microbenchmarks.push_back(micro);
    return spec;
}

TEST(BenchReport, RendersParseableDocument)
{
    const std::string json = perf::renderBenchReport(sampleSpec());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(perf::parseJson(json, doc, error)) << error;

    EXPECT_EQ(doc.stringOr("schema", ""), perf::benchSchema);
    EXPECT_EQ(doc.stringOr("tool", ""), "unit_tool");
    EXPECT_DOUBLE_EQ(doc.numberOr("wall_seconds", 0), 2.0);
    const JsonValue *throughput = doc.find("throughput");
    ASSERT_NE(throughput, nullptr);
    // 1000 accesses over 2 s.
    EXPECT_DOUBLE_EQ(
        throughput->numberOr("accesses_per_second", 0), 500.0);
    EXPECT_DOUBLE_EQ(throughput->numberOr("trials_per_second", 0),
                     1000.0);
    const JsonValue *resources = doc.find("resources");
    ASSERT_NE(resources, nullptr);
    EXPECT_DOUBLE_EQ(resources->numberOr("peak_rss_bytes", 0),
                     static_cast<double>(64u << 20));
    const JsonValue *host = doc.find("host");
    ASSERT_NE(host, nullptr);
    EXPECT_GE(host->numberOr("cpus", -1), 0.0);
    const JsonValue *percentiles = doc.find("percentiles");
    ASSERT_NE(percentiles, nullptr);
    const JsonValue *task_hist =
        percentiles->find("pool.task_seconds");
    ASSERT_NE(task_hist, nullptr);
    EXPECT_NEAR(task_hist->numberOr("p50", 0), 0.5, 0.02);
    EXPECT_NEAR(task_hist->numberOr("p95", 0), 0.95, 0.02);
    const JsonValue *micros = doc.find("microbenchmarks");
    ASSERT_NE(micros, nullptr);
    ASSERT_EQ(micros->array.size(), 1u);
    EXPECT_EQ(micros->array[0].stringOr("name", ""), "kernel");
}

TEST(BenchReport, UnmeasuredThroughputRendersAsNull)
{
    BenchReportSpec spec;
    spec.tool = "idle_tool";
    spec.wallSeconds = 1.0; // no counters at all
    const std::string json = perf::renderBenchReport(spec);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(perf::parseJson(json, doc, error)) << error;
    const JsonValue *throughput = doc.find("throughput");
    ASSERT_NE(throughput, nullptr);
    const JsonValue *accesses =
        throughput->find("accesses_per_second");
    ASSERT_NE(accesses, nullptr);
    EXPECT_TRUE(accesses->isNull());
}

TEST(BenchDiff, IdenticalDocumentsHaveNoRegressions)
{
    const std::string json = perf::renderBenchReport(sampleSpec());
    JsonValue a, b;
    std::string error;
    ASSERT_TRUE(perf::parseJson(json, a, error)) << error;
    ASSERT_TRUE(perf::parseJson(json, b, error)) << error;
    const auto diffs =
        perf::compareBenchReports(a, b, DiffOptions{}, error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_FALSE(diffs.empty());
    for (const auto &diff : diffs) {
        EXPECT_FALSE(diff.regressed) << diff.name;
        EXPECT_DOUBLE_EQ(diff.deltaPct, 0.0) << diff.name;
    }
}

TEST(BenchDiff, FlagsRegressionsDirectionally)
{
    auto base_spec = sampleSpec();
    auto slow_spec = sampleSpec();
    // Wall time doubles (lower-is-better: regression at +100%) and
    // microbenchmark throughput halves (higher-is-better).
    slow_spec.wallSeconds = 4.0;
    slow_spec.microbenchmarks[0].minSeconds = 0.02;
    slow_spec.microbenchmarks[0].itemsPerSecond = 100 / 0.02;

    JsonValue base, cand;
    std::string error;
    ASSERT_TRUE(perf::parseJson(perf::renderBenchReport(base_spec),
                                base, error));
    ASSERT_TRUE(perf::parseJson(perf::renderBenchReport(slow_spec),
                                cand, error));
    const auto diffs =
        perf::compareBenchReports(base, cand, DiffOptions{}, error);
    EXPECT_TRUE(error.empty()) << error;

    bool wall_regressed = false, micro_regressed = false;
    bool throughput_regressed = false;
    for (const auto &diff : diffs) {
        if (diff.name == "wall_seconds")
            wall_regressed = diff.regressed;
        if (diff.name == "micro.kernel.min_seconds")
            micro_regressed = diff.regressed;
        // Counters unchanged over a doubled wall time: derived
        // throughput halves, beyond the 40% threshold.
        if (diff.name == "throughput.accesses_per_second")
            throughput_regressed = diff.regressed;
    }
    EXPECT_TRUE(wall_regressed);
    EXPECT_TRUE(micro_regressed);
    EXPECT_TRUE(throughput_regressed);

    // A generous relax multiplier absorbs the same deltas.
    const auto relaxed = perf::compareBenchReports(
        base, cand, DiffOptions{.relax = 10.0}, error);
    for (const auto &diff : relaxed)
        EXPECT_FALSE(diff.regressed) << diff.name;
}

TEST(BenchDiff, MismatchedToolsRefuseToCompare)
{
    auto a_spec = sampleSpec();
    auto b_spec = sampleSpec();
    b_spec.tool = "other_tool";
    JsonValue a, b;
    std::string error;
    ASSERT_TRUE(
        perf::parseJson(perf::renderBenchReport(a_spec), a, error));
    ASSERT_TRUE(
        perf::parseJson(perf::renderBenchReport(b_spec), b, error));
    const auto diffs =
        perf::compareBenchReports(a, b, DiffOptions{}, error);
    EXPECT_TRUE(diffs.empty());
    EXPECT_NE(error.find("tool mismatch"), std::string::npos);

    // Non-BENCH documents are rejected the same way.
    JsonValue junk;
    ASSERT_TRUE(perf::parseJson("{\"x\": 1}", junk, error));
    error.clear();
    perf::compareBenchReports(junk, a, DiffOptions{}, error);
    EXPECT_NE(error.find("schema"), std::string::npos);
}

GeneratorOptions
smallTraces()
{
    GeneratorOptions options;
    options.traceScale = 0.02;
    return options;
}

TEST_F(PerfTest, HarnessWritesBenchDocumentUnderWatchdog)
{
    RunnerOptions options;
    options.jobs = 2;
    options.passTimeout = 60.0; // watchdog armed, never fires
    options.benchPath = ::testing::TempDir() + "BENCH_unit.json";
    std::remove(options.benchPath.c_str());

    {
        Harness harness("bench_tool", options);
        ASSERT_NE(harness.sampler(), nullptr);
        const auto wl = harness.profile(homogeneousWorkload("astar"),
                                        smallTraces());
        const SystemConfig &config = harness.config();
        const std::vector<PassDesc> descs = {
            {wl->name(), Harness::passKey(wl, "perf")}};
        harness.runPasses(descs, [&](std::size_t) {
            return runStaticPolicy(config, wl->data,
                                   StaticPolicy::PerfFocused,
                                   wl->profile());
        });
        perf::Microbench suite;
        suite.add("noop", "items", [] { return std::uint64_t{1}; });
        perf::BenchOptions micro;
        micro.iterations = 2;
        micro.maxWarmupIterations = 1;
        harness.addMicrobenchResults(suite.run(micro));
        EXPECT_EQ(harness.finish(), 0);
        // finish() joined the sampler; its summary is final.
        EXPECT_GE(harness.sampler()->summary().samples, 1u);
    }

    JsonValue doc;
    std::string error;
    ASSERT_TRUE(perf::parseJsonFile(options.benchPath, doc, error))
        << error;
    EXPECT_EQ(doc.stringOr("schema", ""), perf::benchSchema);
    EXPECT_EQ(doc.stringOr("tool", ""), "bench_tool");
    EXPECT_GT(doc.numberOr("wall_seconds", 0), 0.0);
    const JsonValue *passes = doc.find("passes");
    ASSERT_NE(passes, nullptr);
    EXPECT_DOUBLE_EQ(passes->numberOr("count", 0), 2.0);
    const JsonValue *resources = doc.find("resources");
    ASSERT_NE(resources, nullptr);
    EXPECT_GT(resources->numberOr("peak_rss_bytes", 0), 0.0);
    const JsonValue *micros = doc.find("microbenchmarks");
    ASSERT_NE(micros, nullptr);
    ASSERT_EQ(micros->array.size(), 1u);
    EXPECT_EQ(micros->array[0].stringOr("name", ""), "noop");
    std::remove(options.benchPath.c_str());
}

TEST_F(PerfTest, CancelledCampaignStillFlushesBenchDocument)
{
    runner::clearCancellation();
    RunnerOptions options;
    options.jobs = 1;
    options.benchPath =
        ::testing::TempDir() + "BENCH_cancelled.json";
    std::remove(options.benchPath.c_str());

    Harness harness("cancel_bench_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const SystemConfig &config = harness.config();
    std::vector<PassDesc> descs;
    for (const char *label : {"one", "two", "three"})
        descs.push_back({wl->name(), Harness::passKey(wl, label)});

    try {
        testing::internal::CaptureStderr();
        harness.runPasses(descs, [&](std::size_t i) {
            if (i == 0)
                runner::requestCancellation(); // a SIGINT stand-in
            return runStaticPolicy(config, wl->data,
                                   StaticPolicy::PerfFocused,
                                   wl->profile());
        });
        testing::internal::GetCapturedStderr();
        FAIL() << "expected PassError(Cancelled)";
    } catch (const PassError &error) {
        testing::internal::GetCapturedStderr();
        EXPECT_EQ(error.code(), PassErrorCode::Cancelled);
    }
    runner::clearCancellation();

    // The cancellation path ran finish(): the sampler thread is
    // joined and the BENCH document was written atomically.
    ASSERT_NE(harness.sampler(), nullptr);
    EXPECT_GE(harness.sampler()->summary().samples, 1u);
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(perf::parseJsonFile(options.benchPath, doc, error))
        << error;
    EXPECT_EQ(doc.stringOr("tool", ""), "cancel_bench_tool");
    std::remove(options.benchPath.c_str());
}

} // namespace
} // namespace ramp
