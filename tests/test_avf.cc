/**
 * @file
 * Tests for the AVF tracker (src/reliability/avf) against the
 * hand-computable scenarios of the paper's Figure 3.
 */

#include <gtest/gtest.h>

#include "reliability/avf.hh"
#include "reliability/ser.hh"

namespace ramp
{
namespace
{

constexpr Addr line0 = 0;

TEST(Avf, WriteThenReadIsAceBetween)
{
    // Fig 3a, first half: WR at 100, RD at 400 -> ACE 300 of 1000.
    AvfTracker tracker;
    tracker.onAccess(line0, true, 100);
    tracker.onAccess(line0, false, 400);
    tracker.finalize(1000);
    EXPECT_NEAR(tracker.pageAvf(0), 300.0 / (64.0 * 1000.0), 1e-12);
}

TEST(Avf, TwoReadsAccumulate)
{
    // Fig 3a: WR1@100, RD1@400, RD2@700: ACE 300 + 300.
    AvfTracker tracker;
    tracker.onAccess(line0, true, 100);
    tracker.onAccess(line0, false, 400);
    tracker.onAccess(line0, false, 700);
    tracker.finalize(1000);
    EXPECT_NEAR(tracker.pageAvf(0), 600.0 / (64.0 * 1000.0), 1e-12);
}

TEST(Avf, WriteMasksPrecedingInterval)
{
    // Fig 3b: WR1@100, WR2@600, RD@800: only 600->800 is ACE.
    AvfTracker tracker;
    tracker.onAccess(line0, true, 100);
    tracker.onAccess(line0, true, 600);
    tracker.onAccess(line0, false, 800);
    tracker.finalize(1000);
    EXPECT_NEAR(tracker.pageAvf(0), 200.0 / (64.0 * 1000.0), 1e-12);
}

TEST(Avf, WriteOnlyLineIsNeverAce)
{
    AvfTracker tracker;
    tracker.onAccess(line0, true, 100);
    tracker.onAccess(line0, true, 500);
    tracker.onAccess(line0, true, 900);
    tracker.finalize(1000);
    EXPECT_EQ(tracker.pageAvf(0), 0.0);
}

TEST(Avf, FirstReadCountsFromTimeZero)
{
    // Data initialised at load time: a read at 500 with no prior
    // write is ACE over [0, 500].
    AvfTracker tracker;
    tracker.onAccess(line0, false, 500);
    tracker.finalize(1000);
    EXPECT_NEAR(tracker.pageAvf(0), 500.0 / (64.0 * 1000.0), 1e-12);
}

TEST(Avf, TailAfterLastAccessIsDead)
{
    AvfTracker tracker;
    tracker.onAccess(line0, false, 100);
    tracker.finalize(100000);
    EXPECT_NEAR(tracker.pageAvf(0), 100.0 / (64.0 * 100000.0),
                1e-12);
}

TEST(Avf, SameHotnessDifferentAvf)
{
    // Fig 3c/d: equal access counts, different orders, different AVF.
    AvfTracker tracker;
    const Addr line_c = 0;
    const Addr line_d = lineSize;
    // c: W@0, R@250, R@500, W@750 -> ACE 500
    tracker.onAccess(line_c, true, 0);
    tracker.onAccess(line_c, false, 250);
    tracker.onAccess(line_c, false, 500);
    tracker.onAccess(line_c, true, 750);
    // d: W@0, W@250, W@500, R@750 -> ACE 250
    tracker.onAccess(line_d, true, 0);
    tracker.onAccess(line_d, true, 250);
    tracker.onAccess(line_d, true, 500);
    tracker.onAccess(line_d, false, 750);
    tracker.finalize(1000);
    const double avf = tracker.pageAvf(0);
    EXPECT_NEAR(avf, (500.0 + 250.0) / (64.0 * 1000.0), 1e-12);
}

TEST(Avf, PageComposesSixtyFourLines)
{
    // Every line of the page fully ACE -> page AVF ~= 1.
    AvfTracker tracker;
    for (std::uint64_t l = 0; l < linesPerPage; ++l) {
        tracker.onAccess(l * lineSize, false, 999);
        tracker.onAccess(l * lineSize, false, 1000);
    }
    tracker.finalize(1000);
    EXPECT_NEAR(tracker.pageAvf(0), 1.0, 1e-9);
}

TEST(Avf, UntouchedPageIsZero)
{
    AvfTracker tracker;
    tracker.onAccess(line0, false, 10);
    tracker.finalize(100);
    EXPECT_EQ(tracker.pageAvf(99), 0.0);
    EXPECT_EQ(tracker.touchedPages(), 1u);
}

TEST(Avf, MemoryAvfIsMeanOverTouchedPages)
{
    AvfTracker tracker;
    tracker.onAccess(0, false, 1000);          // page 0
    tracker.onAccess(pageSize, true, 500);     // page 1 (dead)
    tracker.finalize(1000);
    const double expected =
        (tracker.pageAvf(0) + tracker.pageAvf(1)) / 2.0;
    EXPECT_NEAR(tracker.memoryAvf(), expected, 1e-12);
}

TEST(Avf, PageAvfsListsEveryTouchedPage)
{
    AvfTracker tracker;
    tracker.onAccess(0, false, 10);
    tracker.onAccess(5 * pageSize, false, 20);
    tracker.finalize(100);
    const auto avfs = tracker.pageAvfs();
    EXPECT_EQ(avfs.size(), 2u);
}

TEST(Avf, ResetClearsState)
{
    AvfTracker tracker;
    tracker.onAccess(0, false, 10);
    tracker.finalize(100);
    tracker.reset();
    EXPECT_FALSE(tracker.finalized());
    EXPECT_EQ(tracker.touchedPages(), 0u);
}

TEST(AvfDeathTest, MisuseIsDetected)
{
    AvfTracker tracker;
    tracker.finalize(100);
    EXPECT_DEATH(tracker.onAccess(0, false, 10), "finalize");
    EXPECT_DEATH(tracker.finalize(200), "twice");

    AvfTracker unfinalized;
    EXPECT_DEATH((void)unfinalized.memoryAvf(), "finalize");
}

TEST(Ser, FitPerPageScalesWithCapacity)
{
    SerParams params;
    params.fitUncHbmPerGB = 100.0;
    params.fitUncDdrPerGB = 1.0;
    const double per_gb_pages =
        static_cast<double>(1ULL << 30) / pageSize;
    EXPECT_NEAR(params.fitPerPage(MemoryId::HBM) * per_gb_pages,
                100.0, 1e-9);
    EXPECT_NEAR(params.fitRatio(), 100.0, 1e-12);
}

TEST(Ser, ComputeSerWeightsByPlacement)
{
    SerParams params;
    params.fitUncHbmPerGB = 100.0;
    params.fitUncDdrPerGB = 1.0;
    const std::vector<std::pair<PageId, double>> avfs = {{0, 0.5},
                                                         {1, 0.5}};
    const double ddr_only = computeDdrOnlySer(avfs, params);
    const double split = computeSer(
        avfs,
        [](PageId page) {
            return page == 0 ? MemoryId::HBM : MemoryId::DDR;
        },
        params);
    EXPECT_GT(split, ddr_only);
    EXPECT_NEAR(split / ddr_only, (100.0 + 1.0) / 2.0, 1e-9);
}

} // namespace
} // namespace ramp
