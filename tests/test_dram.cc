/**
 * @file
 * Tests for the DRAM timing model (src/dram).
 */

#include <gtest/gtest.h>

#include "dram/memory.hh"

namespace ramp
{
namespace
{

TEST(DramConfig, PresetsMatchTable1)
{
    const auto ddr = ddr3Config();
    EXPECT_EQ(ddr.channels, 2u);
    EXPECT_EQ(ddr.banksPerRank, 8u);
    EXPECT_EQ(ddr.id, MemoryId::DDR);

    const auto hbm = hbmConfig();
    EXPECT_EQ(hbm.channels, 8u);
    EXPECT_EQ(hbm.id, MemoryId::HBM);

    // Aggregate peak bandwidth: HBM must be several times DDR.
    EXPECT_GT(hbm.peakBandwidth(), 3.0 * ddr.peakBandwidth());
}

TEST(DramConfig, CapacityPages)
{
    EXPECT_EQ(hbmConfig().capacityPages(), (32ULL << 20) / 4096);
    EXPECT_EQ(ddr3Config().capacityPages(), (512ULL << 20) / 4096);
}

TEST(DramConfig, NsToCyclesAt3p2GHz)
{
    EXPECT_EQ(nsToCycles(1.0), 3u);  // 3.2 rounds to 3
    EXPECT_EQ(nsToCycles(10.0), 32u);
    EXPECT_EQ(nsToCycles(0.0), 0u);
}

TEST(Dram, IdleReadLatencyIsCasPlusBurst)
{
    DramMemory dram(ddr3Config());
    const auto &t = dram.config().timing;
    // First access: activate (tRCD) + CAS + burst.
    const Cycle completion = dram.access(0, 0, false);
    EXPECT_EQ(completion, t.tRCD + t.tCL + t.tBURST);
}

TEST(Dram, RowHitFasterThanRowMiss)
{
    DramMemory dram(ddr3Config());
    dram.access(0, 0, false); // opens row 0
    // Same row, later line in the same channel: row hit.
    const Cycle start = 1'000'000;
    const std::uint64_t channels = dram.config().channels;
    const Cycle hit =
        dram.access(start, 2 * channels * lineSize, false) - start;
    // A line mapping to the same bank but a far row: miss.
    const Cycle start2 = 2'000'000;
    const auto lines_per_row = dram.config().rowBytes / lineSize;
    const auto banks = dram.config().banksPerRank *
                       dram.config().ranksPerChannel;
    const Addr far = channels * lines_per_row * banks * lineSize;
    const Cycle miss = dram.access(start2, far, false) - start2;
    EXPECT_LT(hit, miss);
}

TEST(Dram, RowHitStreamRunsAtBurstRate)
{
    DramMemory dram(ddr3Config());
    const auto &t = dram.config().timing;
    const std::uint64_t channels = dram.config().channels;
    // Stream lines of channel 0's open row back-to-back.
    Cycle completion = 0;
    const int n = 16;
    for (int i = 0; i < n; ++i)
        completion = dram.access(
            0, static_cast<Addr>(i) * channels * lineSize, false);
    // After the first access, each extra line costs ~tBURST.
    const Cycle expected_tail =
        static_cast<Cycle>(n - 1) * t.tBURST;
    EXPECT_LE(completion,
              t.tRCD + t.tCL + t.tBURST + expected_tail + 1);
}

TEST(Dram, ChannelsServeInParallel)
{
    DramMemory dram(ddr3Config());
    // One line to each channel at time 0: both complete at the idle
    // latency (no serialisation across channels).
    const Cycle a = dram.access(0, 0 * lineSize, false);
    const Cycle b = dram.access(0, 1 * lineSize, false);
    EXPECT_EQ(a, b);
}

TEST(Dram, SameChannelSerialisesOnBus)
{
    DramMemory dram(ddr3Config());
    const std::uint64_t channels = dram.config().channels;
    const Cycle a = dram.access(0, 0, false);
    const Cycle b = dram.access(0, channels * lineSize, false);
    EXPECT_GE(b, a + dram.config().timing.tBURST);
}

TEST(Dram, HbmStreamsFasterThanDdr)
{
    DramMemory ddr(ddr3Config());
    DramMemory hbm(hbmConfig());
    Cycle ddr_done = 0, hbm_done = 0;
    for (Addr addr = 0; addr < 512 * lineSize; addr += lineSize) {
        ddr_done = ddr.access(0, addr, false);
        hbm_done = hbm.access(0, addr, false);
    }
    EXPECT_LT(hbm_done, ddr_done);
}

TEST(Dram, StatsTrackReadsWritesAndRowHits)
{
    DramMemory dram(ddr3Config());
    dram.access(0, 0, false);
    dram.access(0, dram.config().channels * lineSize, false);
    dram.access(0, 0, true);
    const auto &stats = dram.stats();
    EXPECT_EQ(stats.reads, 2u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.rowHits + stats.rowMisses, 3u);
    EXPECT_GT(stats.busBusyCycles, 0u);
    EXPECT_GT(stats.avgReadLatency(), 0.0);
    EXPECT_GT(stats.rowHitRatio(), 0.0);
}

TEST(Dram, ResetStatsClearsCounters)
{
    DramMemory dram(hbmConfig());
    dram.access(0, 0, false);
    dram.resetStats();
    EXPECT_EQ(dram.stats().reads, 0u);
    EXPECT_EQ(dram.stats().busBusyCycles, 0u);
}

TEST(Dram, LoadedLatencyGrowsUnderContention)
{
    DramMemory dram(ddr3Config());
    // Saturate one channel with same-cycle arrivals.
    Cycle last = 0;
    for (int i = 0; i < 64; ++i)
        last = dram.access(
            0, static_cast<Addr>(i) * dram.config().channels *
                   lineSize * 997 % (1 << 26) / lineSize * lineSize *
                   dram.config().channels,
            false);
    EXPECT_GT(last, dram.config().idleReadLatency());
    EXPECT_GT(dram.stats().avgReadLatency(),
              static_cast<double>(dram.config().idleReadLatency()));
}

TEST(Dram, BusUtilisationBounded)
{
    DramMemory dram(ddr3Config());
    Cycle last = 0;
    for (int i = 0; i < 1000; ++i)
        last = dram.access(static_cast<Cycle>(i),
                           static_cast<Addr>(i) * lineSize, false);
    const double util =
        dram.stats().busUtilisation(last, dram.config().channels);
    EXPECT_GT(util, 0.0);
    EXPECT_LE(util, 1.0);
}

TEST(DramDeathTest, BadConfigIsFatal)
{
    DramConfig config = ddr3Config();
    config.channels = 0;
    EXPECT_EXIT(DramMemory{config}, ::testing::ExitedWithCode(1),
                "");
    DramConfig odd_row = ddr3Config();
    odd_row.rowBytes = 100;
    EXPECT_EXIT(DramMemory{odd_row}, ::testing::ExitedWithCode(1),
                "row");
}

} // namespace
} // namespace ramp
