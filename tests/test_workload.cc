/**
 * @file
 * Tests for the benchmark registry, Table 2 mixes, and the address
 * layout (src/trace/workload).
 */

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <stdexcept>

#include "trace/workload.hh"

namespace ramp
{
namespace
{

TEST(Registry, AllHomogeneousProgramsExist)
{
    for (const char *name :
         {"mcf", "lbm", "milc", "astar", "soplex", "libquantum",
          "cactusADM", "xsbench", "lulesh"}) {
        const auto &profile = benchmarkProfile(name);
        EXPECT_EQ(profile.name, name);
        EXPECT_GT(profile.mpki, 0.0);
        EXPECT_GT(profile.requestsPerCore, 0u);
        EXPECT_FALSE(profile.structures.empty());
    }
}

TEST(Registry, MixOnlyProgramsExist)
{
    for (const char *name : {"omnetpp", "sphinx", "dealII",
                             "leslie3d", "gcc", "GemsFDTD", "bzip",
                             "bwaves"})
        EXPECT_EQ(benchmarkProfile(name).name, name);
}

TEST(Registry, SeventeenProgramsTotal)
{
    EXPECT_EQ(allBenchmarkNames().size(), 17u);
}

TEST(Registry, StructureWeightsArePositive)
{
    for (const auto &name : allBenchmarkNames()) {
        for (const auto &spec : benchmarkProfile(name).structures) {
            EXPECT_GT(spec.weight, 0.0) << name << "/" << spec.name;
            EXPECT_GE(spec.pages, 1u) << name << "/" << spec.name;
            EXPECT_GE(spec.writeFraction, 0.0);
            EXPECT_LE(spec.writeFraction, 1.0);
        }
    }
}

TEST(Registry, FootprintsAreReasonable)
{
    // Per-instance footprints should be in the scaled regime: a few
    // hundred pages to a few thousand (DESIGN.md scaling).
    for (const auto &name : allBenchmarkNames()) {
        const auto pages = benchmarkProfile(name).footprintPages();
        EXPECT_GE(pages, 200u) << name;
        EXPECT_LE(pages, 5000u) << name;
    }
}

TEST(Workloads, HomogeneousHasSixteenIdenticalCores)
{
    const auto spec = homogeneousWorkload("mcf");
    EXPECT_EQ(spec.name, "mcf");
    ASSERT_EQ(spec.coreBenchmarks.size(),
              static_cast<std::size_t>(workloadCores));
    for (const auto &bench : spec.coreBenchmarks)
        EXPECT_EQ(bench, "mcf");
}

TEST(Workloads, MixesCoverSixteenCores)
{
    for (const char *name : {"mix1", "mix2", "mix3", "mix4", "mix5"}) {
        const auto spec = mixWorkload(name);
        EXPECT_EQ(spec.coreBenchmarks.size(),
                  static_cast<std::size_t>(workloadCores))
            << name;
    }
}

TEST(Workloads, Mix1MatchesTable2)
{
    const auto spec = mixWorkload("mix1");
    auto count = [&](const std::string &bench) {
        return std::count(spec.coreBenchmarks.begin(),
                          spec.coreBenchmarks.end(), bench);
    };
    EXPECT_EQ(count("mcf"), 3);
    EXPECT_EQ(count("lbm"), 2);
    EXPECT_EQ(count("milc"), 2);
    EXPECT_EQ(count("omnetpp"), 1);
    EXPECT_EQ(count("astar"), 2);
    EXPECT_EQ(count("sphinx"), 1);
    EXPECT_EQ(count("soplex"), 2);
    EXPECT_EQ(count("libquantum"), 2);
    EXPECT_EQ(count("gcc"), 1);
}

TEST(Workloads, Mix5MatchesTable2)
{
    const auto spec = mixWorkload("mix5");
    auto count = [&](const std::string &bench) {
        return std::count(spec.coreBenchmarks.begin(),
                          spec.coreBenchmarks.end(), bench);
    };
    EXPECT_EQ(count("dealII"), 3);
    EXPECT_EQ(count("leslie3d"), 3);
    EXPECT_EQ(count("GemsFDTD"), 1);
    EXPECT_EQ(count("bzip"), 3);
    EXPECT_EQ(count("bwaves"), 1);
    EXPECT_EQ(count("cactusADM"), 5);
}

TEST(Workloads, StandardSetHasFourteenEntries)
{
    const auto specs = standardWorkloads();
    EXPECT_EQ(specs.size(), 14u);
    std::set<std::string> names;
    for (const auto &spec : specs)
        names.insert(spec.name);
    EXPECT_EQ(names.size(), 14u);
    EXPECT_TRUE(names.count("astar"));
    EXPECT_TRUE(names.count("mix5"));
}

TEST(Workloads, MotivationSetMatchesFigure1)
{
    const auto specs = motivationWorkloads();
    ASSERT_EQ(specs.size(), 3u);
    EXPECT_EQ(specs[0].name, "astar");
    EXPECT_EQ(specs[1].name, "cactusADM");
    EXPECT_EQ(specs[2].name, "mix1");
}

TEST(Layout, RangesAreContiguousAndDisjoint)
{
    const auto layout = buildLayout(mixWorkload("mix1"));
    ASSERT_FALSE(layout.ranges.empty());
    PageId expected = 0;
    for (const auto &range : layout.ranges) {
        EXPECT_EQ(range.firstPage, expected);
        EXPECT_GT(range.pages, 0u);
        expected = range.endPage();
    }
    EXPECT_EQ(layout.totalPages, expected);
}

TEST(Layout, RangeOfFindsOwner)
{
    const auto layout = buildLayout(homogeneousWorkload("mcf"));
    for (const auto &range : layout.ranges) {
        const int idx = layout.rangeOf(range.firstPage);
        ASSERT_GE(idx, 0);
        EXPECT_EQ(layout.ranges[static_cast<std::size_t>(idx)]
                      .firstPage,
                  range.firstPage);
        const int last = layout.rangeOf(range.endPage() - 1);
        EXPECT_EQ(last, idx);
    }
    EXPECT_EQ(layout.rangeOf(layout.totalPages), -1);
    EXPECT_EQ(layout.rangeOf(layout.totalPages + 100), -1);
}

TEST(Layout, EveryCoreHasItsProgramStructures)
{
    const auto spec = mixWorkload("mix2");
    const auto layout = buildLayout(spec);
    for (int core = 0; core < workloadCores; ++core) {
        const auto &profile = benchmarkProfile(
            spec.coreBenchmarks[static_cast<std::size_t>(core)]);
        std::size_t count = 0;
        for (const auto &range : layout.ranges)
            if (range.core == core) {
                EXPECT_EQ(range.benchmark, profile.name);
                ++count;
            }
        EXPECT_EQ(count, profile.structures.size());
    }
}

TEST(Workloads, UnknownNamesThrowInvalidArgument)
{
    // Unknown names are user input, so they throw (the runner
    // contains the failure) instead of exiting the process.
    EXPECT_THROW(benchmarkProfile("nosuch"), std::invalid_argument);
    EXPECT_THROW(mixWorkload("mix9"), std::invalid_argument);
}

TEST(Validation, AcceptsEveryRegisteredWorkload)
{
    for (const auto &spec : standardWorkloads())
        EXPECT_NO_THROW(validateWorkloadSpec(spec));
}

TEST(Validation, RejectsMalformedSpecsWithActionableMessages)
{
    WorkloadSpec wrong_cores;
    wrong_cores.name = "short";
    wrong_cores.coreBenchmarks = {"mcf", "lbm"};
    EXPECT_THROW(validateWorkloadSpec(wrong_cores),
                 std::invalid_argument);

    BenchmarkProfile profile = benchmarkProfile("mcf");
    profile.structures[0].weight =
        -1.0; // negative hotness weight
    EXPECT_THROW(validateBenchmarkProfile(profile),
                 std::invalid_argument);

    profile = benchmarkProfile("mcf");
    profile.structures[0].weight =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(validateBenchmarkProfile(profile),
                 std::invalid_argument);

    profile = benchmarkProfile("mcf");
    profile.structures[0].pages = 0; // zero footprint
    EXPECT_THROW(validateBenchmarkProfile(profile),
                 std::invalid_argument);

    profile = benchmarkProfile("mcf");
    profile.structures[0].writeFraction = 1.5;
    EXPECT_THROW(validateBenchmarkProfile(profile),
                 std::invalid_argument);

    // The message names the offending structure and field.
    profile = benchmarkProfile("mcf");
    profile.structures[0].weight = -2.0;
    try {
        validateBenchmarkProfile(profile);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string message = e.what();
        EXPECT_NE(message.find(profile.structures[0].name),
                  std::string::npos);
        EXPECT_NE(message.find("weight"), std::string::npos);
    }
}

} // namespace
} // namespace ramp
