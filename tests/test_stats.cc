/**
 * @file
 * Unit tests for the statistics helpers (src/common/stats).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/stats.hh"

namespace ramp
{
namespace
{

TEST(RunningStat, EmptyHasNoExtrema)
{
    RunningStat stat;
    EXPECT_EQ(stat.count(), 0u);
    EXPECT_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.variance(), 0.0);
    // min()/max() of nothing is meaningless; NaN makes a consumer
    // that forgets the empty case fail loudly instead of seeing a
    // plausible 0.
    EXPECT_TRUE(std::isnan(stat.min()));
    EXPECT_TRUE(std::isnan(stat.max()));
}

TEST(RunningStat, SingleSample)
{
    RunningStat stat;
    stat.add(5.0);
    EXPECT_EQ(stat.count(), 1u);
    EXPECT_EQ(stat.mean(), 5.0);
    EXPECT_EQ(stat.variance(), 0.0);
    EXPECT_EQ(stat.min(), 5.0);
    EXPECT_EQ(stat.max(), 5.0);
}

TEST(RunningStat, KnownMoments)
{
    RunningStat stat;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(x);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    // Unbiased sample variance of the classic example is 32/7.
    EXPECT_NEAR(stat.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(stat.min(), 2.0);
    EXPECT_EQ(stat.max(), 9.0);
    EXPECT_DOUBLE_EQ(stat.sum(), 40.0);
}

TEST(RunningStat, NegativeValues)
{
    RunningStat stat;
    stat.add(-3.0);
    stat.add(3.0);
    EXPECT_DOUBLE_EQ(stat.mean(), 0.0);
    EXPECT_EQ(stat.min(), -3.0);
    EXPECT_EQ(stat.max(), 3.0);
}

TEST(Pearson, PerfectPositive)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegative)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> ys = {10, 8, 6, 4, 2};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(Pearson, ConstantSeriesGivesZero)
{
    const std::vector<double> xs = {1, 2, 3};
    const std::vector<double> ys = {5, 5, 5};
    EXPECT_EQ(pearsonCorrelation(xs, ys), 0.0);
}

TEST(Pearson, EmptyAndSingletonGiveZero)
{
    const std::vector<double> empty;
    const std::vector<double> one = {1.0};
    EXPECT_EQ(pearsonCorrelation(empty, empty), 0.0);
    EXPECT_EQ(pearsonCorrelation(one, one), 0.0);
}

TEST(Pearson, KnownValue)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    const std::vector<double> ys = {1, 3, 2, 4};
    EXPECT_NEAR(pearsonCorrelation(xs, ys), 0.8, 1e-12);
}

TEST(Mean, Basics)
{
    const std::vector<double> xs = {1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(xs), 2.5);
    const std::vector<double> empty;
    EXPECT_EQ(mean(empty), 0.0);
}

TEST(GeometricMean, Basics)
{
    const std::vector<double> xs = {1.0, 4.0};
    EXPECT_NEAR(geometricMean(xs), 2.0, 1e-12);
    const std::vector<double> same = {3.0, 3.0, 3.0};
    EXPECT_NEAR(geometricMean(same), 3.0, 1e-12);
    const std::vector<double> empty;
    EXPECT_EQ(geometricMean(empty), 0.0);
}

} // namespace
} // namespace ramp
