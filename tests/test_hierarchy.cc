/**
 * @file
 * Tests for the two-level cache hierarchy and the trace filter
 * (src/cache/hierarchy, src/cache/filter).
 */

#include <gtest/gtest.h>

#include "cache/filter.hh"
#include "cache/hierarchy.hh"
#include "trace/generator.hh"

namespace ramp
{
namespace
{

HierarchyConfig
tinyHierarchy(int cores = 2)
{
    HierarchyConfig config;
    config.cores = cores;
    config.l1i = {1024, 2, 64};
    config.l1d = {1024, 2, 64};
    config.l2 = {8192, 4, 64};
    return config;
}

TEST(Hierarchy, FirstAccessGoesToMemory)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    const auto result = hierarchy.accessData(0, 0x1000, false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_FALSE(result.l2Hit);
    ASSERT_EQ(result.numAccesses, 1);
    EXPECT_EQ(result.accesses[0].addr, 0x1000u);
    EXPECT_FALSE(result.accesses[0].isWrite);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.accessData(0, 0x1000, false);
    const auto result = hierarchy.accessData(0, 0x1000, false);
    EXPECT_TRUE(result.l1Hit);
    EXPECT_EQ(result.numAccesses, 0);
}

TEST(Hierarchy, L2AbsorbsCrossCoreReuse)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.accessData(0, 0x1000, false);
    const auto result = hierarchy.accessData(1, 0x1000, false);
    EXPECT_FALSE(result.l1Hit);
    EXPECT_TRUE(result.l2Hit);
    EXPECT_EQ(result.numAccesses, 0);
}

TEST(Hierarchy, InstructionPathUsesOwnL1)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.accessInst(0, 0x2000);
    EXPECT_TRUE(hierarchy.accessInst(0, 0x2000).l1Hit);
    // Data access to the same line misses L1D but hits shared L2.
    const auto data = hierarchy.accessData(0, 0x2000, false);
    EXPECT_FALSE(data.l1Hit);
    EXPECT_TRUE(data.l2Hit);
}

TEST(Hierarchy, DrainFlushesDirtyData)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.accessData(0, 0x3000, true);
    const auto accesses = hierarchy.drain();
    ASSERT_FALSE(accesses.empty());
    bool found = false;
    for (const auto &access : accesses) {
        EXPECT_TRUE(access.isWrite);
        found = found || access.addr == 0x3000;
    }
    EXPECT_TRUE(found);
}

TEST(Hierarchy, StatsPerCore)
{
    CacheHierarchy hierarchy(tinyHierarchy());
    hierarchy.accessData(0, 0x1000, false);
    hierarchy.accessData(0, 0x1000, false);
    hierarchy.accessData(1, 0x5000, false);
    EXPECT_EQ(hierarchy.l1dStats(0).accesses, 2u);
    EXPECT_EQ(hierarchy.l1dStats(0).hits, 1u);
    EXPECT_EQ(hierarchy.l1dStats(1).accesses, 1u);
    EXPECT_EQ(hierarchy.l2Stats().accesses, 2u);
}

TEST(Filter, AbsorbsHitsAndPreservesInstructions)
{
    // Two accesses to the same line: the second is absorbed and its
    // instructions fold into the following surviving record.
    std::vector<CoreTrace> cpu(1);
    cpu[0].push_back({0x1000, 9, 0, false});
    cpu[0].push_back({0x1000, 9, 0, false}); // L1 hit
    cpu[0].push_back({0x9000, 9, 0, false});

    FilterStats stats;
    const auto mem = filterTraces(cpu, tinyHierarchy(1), &stats);
    ASSERT_EQ(mem.size(), 1u);
    ASSERT_EQ(mem[0].size(), 2u);
    EXPECT_EQ(stats.cpuAccesses, 3u);
    EXPECT_EQ(stats.memAccesses, 2u);
    // Folded gap: the absorbed record's 10 instructions + own 9.
    EXPECT_EQ(mem[0][1].gap, 19u);

    const auto cpu_stats = computeStats(cpu);
    const auto mem_stats = computeStats(mem);
    EXPECT_EQ(mem_stats.instructions, cpu_stats.instructions);
}

TEST(Filter, DirtyEvictionsBecomeWritebacks)
{
    // Write a line, then stream enough lines through the tiny
    // hierarchy to force its eviction all the way out.
    std::vector<CoreTrace> cpu(1);
    cpu[0].push_back({0x0, 0, 0, true});
    for (Addr addr = 0x10000; addr < 0x18000; addr += 64)
        cpu[0].push_back({addr, 0, 0, false});

    FilterStats stats;
    const auto mem = filterTraces(cpu, tinyHierarchy(1), &stats);
    bool wb_found = false;
    for (const auto &req : mem[0])
        wb_found = wb_found || (req.isWrite && req.addr == 0x0);
    EXPECT_TRUE(wb_found);
    EXPECT_GT(stats.writebacks, 0u);
}

TEST(Filter, ReducesSyntheticCpuTraces)
{
    GeneratorOptions options;
    options.traceScale = 0.01;
    options.cpuLevel = true;
    const auto spec = homogeneousWorkload("gcc");
    const auto cpu = generateTraces(spec, options);

    HierarchyConfig config; // default 16-core scaled hierarchy
    FilterStats stats;
    const auto mem = filterTraces(cpu, config, &stats);
    EXPECT_LT(stats.passRatio(), 1.0);
    EXPECT_GT(stats.passRatio(), 0.0);
    EXPECT_EQ(mem.size(), cpu.size());
}

TEST(Filter, DeterministicAcrossRuns)
{
    GeneratorOptions options;
    options.traceScale = 0.005;
    options.cpuLevel = true;
    const auto spec = homogeneousWorkload("bzip");
    const auto cpu = generateTraces(spec, options);
    const auto a = filterTraces(cpu, tinyHierarchy(16));
    const auto b = filterTraces(cpu, tinyHierarchy(16));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t core = 0; core < a.size(); ++core) {
        ASSERT_EQ(a[core].size(), b[core].size());
        for (std::size_t i = 0; i < a[core].size(); ++i)
            EXPECT_EQ(a[core][i].addr, b[core][i].addr);
    }
}

} // namespace
} // namespace ramp
