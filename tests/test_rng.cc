/**
 * @file
 * Unit and property tests for the deterministic RNG and the Zipf
 * sampler (src/common/rng).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hh"

namespace ramp
{
namespace
{

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (a.next() == b.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(Rng, NextRangeStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextRange(bound), bound);
    }
}

TEST(Rng, NextRangeOfOneIsZero)
{
    Rng rng(9);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.nextRange(1), 0u);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Rng rng(11);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf)
{
    Rng rng(13);
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextDouble();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng rng(17);
    const int n = 100000;
    int hits = 0;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliDegenerateProbabilities)
{
    Rng rng(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, PoissonMeanSmallLambda)
{
    Rng rng(23);
    const double lambda = 3.5;
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextPoisson(lambda));
    EXPECT_NEAR(sum / n, lambda, 0.1);
}

TEST(Rng, PoissonMeanLargeLambda)
{
    Rng rng(29);
    const double lambda = 120.0;
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.nextPoisson(lambda));
    EXPECT_NEAR(sum / n, lambda, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(31);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextPoisson(0.0), 0u);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(37);
    const double rate = 0.25;
    double sum = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(rate);
    EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(41);
    double sum = 0, sq = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.nextGaussian();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(43);
    Rng child = parent.split();
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        if (parent.next() == child.next())
            ++equal;
    EXPECT_LT(equal, 2);
}

TEST(ZipfSampler, UniformWhenAlphaZero)
{
    ZipfSampler zipf(10, 0.0);
    Rng rng(47);
    std::vector<int> counts(10, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[zipf.sample(rng)];
    for (const int count : counts)
        EXPECT_NEAR(static_cast<double>(count) / n, 0.1, 0.01);
}

TEST(ZipfSampler, ProbabilitiesSumToOne)
{
    ZipfSampler zipf(100, 0.8);
    double sum = 0;
    for (std::uint64_t r = 0; r < 100; ++r)
        sum += zipf.probability(r);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSampler, ProbabilityOutOfRangeIsZero)
{
    ZipfSampler zipf(10, 1.0);
    EXPECT_EQ(zipf.probability(10), 0.0);
    EXPECT_EQ(zipf.probability(1000), 0.0);
}

TEST(ZipfSampler, SingleItem)
{
    ZipfSampler zipf(1, 2.0);
    Rng rng(53);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(zipf.sample(rng), 0u);
}

/** Property sweep: rank-0 mass matches theory across alphas. */
class ZipfAlphaTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfAlphaTest, HeadProbabilityMatchesTheory)
{
    const double alpha = GetParam();
    const std::uint64_t n = 50;
    ZipfSampler zipf(n, alpha);

    double denom = 0;
    for (std::uint64_t r = 1; r <= n; ++r)
        denom += 1.0 / std::pow(static_cast<double>(r), alpha);
    EXPECT_NEAR(zipf.probability(0), 1.0 / denom, 1e-9);

    Rng rng(59);
    const int samples = 200000;
    int head = 0;
    for (int i = 0; i < samples; ++i)
        head += zipf.sample(rng) == 0 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(head) / samples,
                zipf.probability(0), 0.01);
}

TEST_P(ZipfAlphaTest, RanksMonotonicallyLessLikely)
{
    ZipfSampler zipf(20, GetParam());
    for (std::uint64_t r = 1; r < 20; ++r)
        EXPECT_GE(zipf.probability(r - 1) + 1e-12,
                  zipf.probability(r));
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfAlphaTest,
                         ::testing::Values(0.0, 0.3, 0.8, 1.0, 1.5));

} // namespace
} // namespace ramp
