/**
 * @file
 * Tests for the system configuration (src/hma/config) and its
 * Table 1 correspondence.
 */

#include <gtest/gtest.h>

#include "hma/config.hh"

namespace ramp
{
namespace
{

TEST(SystemConfig, ScaledDefaultMatchesTable1Shape)
{
    const auto config = SystemConfig::scaledDefault();
    EXPECT_EQ(config.cores, 16);
    EXPECT_EQ(config.issueWidth, 4u);
    EXPECT_EQ(config.robSize, 128u);
    EXPECT_EQ(config.hbm.id, MemoryId::HBM);
    EXPECT_EQ(config.ddr.id, MemoryId::DDR);
    // Capacity ratio preserved: DDR = 16x HBM (Table 1: 16 GB/1 GB).
    EXPECT_EQ(config.ddr.capacityBytes,
              16 * config.hbm.capacityBytes);
}

TEST(SystemConfig, HbmPageCount)
{
    const auto config = SystemConfig::scaledDefault();
    EXPECT_EQ(config.hbmPages(),
              config.hbm.capacityBytes / pageSize);
    EXPECT_EQ(config.hbmPages(), 8192u);
}

TEST(SystemConfig, FcPerMeaDivides)
{
    SystemConfig config;
    config.fcIntervalCycles = 3'200'000;
    config.meaIntervalCycles = 100'000;
    EXPECT_EQ(config.fcPerMea(), 32u);
}

TEST(SystemConfig, IntervalRatioIsPaperLike)
{
    // The paper uses 100 ms FC and 50 us MEA intervals; the scaled
    // defaults must keep FC much coarser than MEA.
    const auto config = SystemConfig::scaledDefault();
    EXPECT_GE(config.fcPerMea(), 8u);
    EXPECT_GT(config.fcIntervalCycles, config.meaIntervalCycles);
}

TEST(SystemConfig, SerDefaultsFavourDdr)
{
    const auto config = SystemConfig::scaledDefault();
    EXPECT_GT(config.ser.fitUncHbmPerGB, config.ser.fitUncDdrPerGB);
    EXPECT_GT(config.ser.fitRatio(), 100.0);
}

TEST(SystemConfig, MigrationPacingIsBandwidthFraction)
{
    const auto config = SystemConfig::scaledDefault();
    // One line per spacing must be well under the DDR peak
    // (otherwise migrations starve demand).
    const double mig_bw =
        static_cast<double>(lineSize) /
        static_cast<double>(config.migLineSpacingCycles);
    EXPECT_LT(mig_bw, config.ddr.peakBandwidth());
}

} // namespace
} // namespace ramp
