/**
 * @file
 * Tests for trace containers, statistics, and binary I/O
 * (src/trace/trace).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "trace/trace.hh"

namespace ramp
{
namespace
{

CoreTrace
sampleTrace()
{
    CoreTrace trace;
    trace.push_back({0x1000, 10, 0, false});
    trace.push_back({0x1040, 5, 0, true});
    trace.push_back({0x2000, 0, 0, false});
    return trace;
}

TEST(TraceStats, CountsAndMpki)
{
    const auto stats = computeStats(sampleTrace());
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_EQ(stats.reads, 2u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.instructions, 11u + 6u + 1u);
    EXPECT_EQ(stats.footprintPages, 2u);
    EXPECT_NEAR(stats.mpki(), 3.0 * 1000 / 18.0, 1e-9);
    EXPECT_NEAR(stats.writeFraction(), 1.0 / 3.0, 1e-12);
}

TEST(TraceStats, EmptyTrace)
{
    const auto stats = computeStats(CoreTrace{});
    EXPECT_EQ(stats.requests, 0u);
    EXPECT_EQ(stats.mpki(), 0.0);
    EXPECT_EQ(stats.writeFraction(), 0.0);
}

TEST(TraceStats, MultiCoreMerge)
{
    std::vector<CoreTrace> traces = {sampleTrace(), sampleTrace()};
    traces[1][0].addr = 0x9000; // extra page
    const auto stats = computeStats(traces);
    EXPECT_EQ(stats.requests, 6u);
    EXPECT_EQ(stats.footprintPages, 3u);
}

TEST(TraceStats, TouchedPages)
{
    const std::vector<CoreTrace> traces = {sampleTrace()};
    const auto pages = touchedPages(traces);
    EXPECT_EQ(pages.size(), 2u);
    EXPECT_TRUE(pages.count(pageOf(0x1000)));
    EXPECT_TRUE(pages.count(pageOf(0x2000)));
}

TEST(TraceIo, RoundTripSingleTrace)
{
    std::stringstream buffer;
    const auto original = sampleTrace();
    writeTrace(buffer, original);
    const auto restored = readTrace(buffer);
    ASSERT_EQ(restored.size(), original.size());
    for (std::size_t i = 0; i < original.size(); ++i) {
        EXPECT_EQ(restored[i].addr, original[i].addr);
        EXPECT_EQ(restored[i].gap, original[i].gap);
        EXPECT_EQ(restored[i].core, original[i].core);
        EXPECT_EQ(restored[i].isWrite, original[i].isWrite);
    }
}

TEST(TraceIo, RoundTripWorkloadFile)
{
    const auto path =
        std::filesystem::temp_directory_path() / "ramp_trace_test.bin";
    std::vector<CoreTrace> traces = {sampleTrace(), CoreTrace{},
                                     sampleTrace()};
    traces[2][1].core = 2;
    writeWorkloadTrace(path.string(), traces);
    const auto restored = readWorkloadTrace(path.string());
    ASSERT_EQ(restored.size(), 3u);
    EXPECT_EQ(restored[0].size(), 3u);
    EXPECT_TRUE(restored[1].empty());
    EXPECT_EQ(restored[2][1].core, 2);
    std::filesystem::remove(path);
}

TEST(MemRequest, InstructionsIncludesSelf)
{
    MemRequest req;
    req.gap = 9;
    EXPECT_EQ(req.instructions(), 10u);
}

} // namespace
} // namespace ramp
