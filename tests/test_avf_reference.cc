/**
 * @file
 * Cross-validation of the AVF tracker against a naive reference
 * implementation on randomly generated access sequences.
 *
 * The reference recomputes AVF from the full event list per line
 * (quadratic, obviously correct); the tracker must match bit-for-bit
 * on every random schedule.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/rng.hh"
#include "reliability/avf.hh"

namespace ramp
{
namespace
{

struct Event
{
    Addr addr;
    bool isWrite;
    Cycle time;
};

/** Obviously-correct AVF: walk each line's event list. */
double
referencePageAvf(const std::vector<Event> &events, PageId page,
                 Cycle end_time)
{
    std::map<LineId, std::vector<Event>> per_line;
    for (const auto &event : events)
        if (pageOf(event.addr) == page)
            per_line[lineOf(event.addr)].push_back(event);

    Cycle total_ace = 0;
    for (auto &[line, list] : per_line) {
        Cycle last = 0; // line initialised at t = 0
        for (const auto &event : list) {
            if (!event.isWrite && event.time > last)
                total_ace += event.time - last;
            last = event.time;
        }
        // Tail is dead.
    }
    return static_cast<double>(total_ace) /
           (static_cast<double>(linesPerPage) *
            static_cast<double>(end_time));
}

class AvfFuzzTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(AvfFuzzTest, MatchesReferenceOnRandomSchedules)
{
    Rng rng(GetParam());
    const int pages = 4;
    const Cycle end_time = 100000;

    std::vector<Event> events;
    AvfTracker tracker;
    Cycle now = 0;
    for (int i = 0; i < 3000; ++i) {
        now += 1 + rng.nextRange(30);
        Event event;
        event.addr =
            rng.nextRange(pages) * pageSize +
            rng.nextRange(linesPerPage) * lineSize;
        event.isWrite = rng.nextBool(0.4);
        event.time = now;
        events.push_back(event);
        tracker.onAccess(event.addr, event.isWrite, event.time);
    }
    ASSERT_LT(now, end_time);
    tracker.finalize(end_time);

    for (PageId page = 0; page < pages; ++page) {
        EXPECT_NEAR(tracker.pageAvf(page),
                    referencePageAvf(events, page, end_time), 1e-12)
            << "page " << page << " seed " << GetParam();
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AvfFuzzTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21,
                                           34, 55, 89));

} // namespace
} // namespace ramp
