/**
 * @file
 * Property tests for migration engines: on random access streams,
 * every decision must be structurally valid — swaps pair an HBM
 * resident with a DDR resident, nothing pinned moves, budgets hold,
 * and no page appears twice in one decision.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/rng.hh"
#include "migration/engine.hh"

namespace ramp
{
namespace
{

enum class Kind
{
    Perf,
    Fc,
    Cc,
};

std::unique_ptr<MigrationEngine>
makeKind(Kind kind)
{
    switch (kind) {
      case Kind::Perf:
        return std::make_unique<PerfFocusedMigration>(1000, 64);
      case Kind::Fc:
        return std::make_unique<FcReliabilityMigration>(1000, 64);
      case Kind::Cc:
        return std::make_unique<CrossCounterMigration>(1000, 4, 32,
                                                       8, 64);
    }
    return nullptr;
}

class EngineFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
};

TEST_P(EngineFuzzTest, DecisionsAreAlwaysValid)
{
    const auto [kind_raw, seed] = GetParam();
    const auto kind = static_cast<Kind>(kind_raw);
    Rng rng(seed);

    const std::uint64_t capacity = 24;
    const PageId universe = 128;
    PlacementMap map(capacity);
    std::set<PageId> pinned;
    for (PageId page = 0; page < capacity; ++page) {
        if (page % 8 == 0) {
            map.placePinned(page, MemoryId::HBM);
            pinned.insert(page);
        } else {
            map.place(page, MemoryId::HBM);
        }
    }

    const auto engine = makeKind(kind);
    Cycle now = 0;
    for (int interval = 0; interval < 40; ++interval) {
        // Random traffic with a drifting hot set.
        for (int i = 0; i < 600; ++i) {
            const PageId page =
                (rng.nextRange(40) + interval * 2) % universe;
            engine->onAccess(page, rng.nextBool(0.4),
                             map.memoryOf(page));
        }
        now += engine->interval();
        const auto decision = engine->onInterval(now, map);

        // Structural validity.
        std::set<PageId> seen;
        auto check_unique = [&](PageId page) {
            ASSERT_TRUE(seen.insert(page).second)
                << "page " << page << " moved twice";
        };
        for (const auto &[victim, fill] : decision.swaps) {
            check_unique(victim);
            check_unique(fill);
            EXPECT_EQ(map.memoryOf(victim), MemoryId::HBM);
            EXPECT_EQ(map.memoryOf(fill), MemoryId::DDR);
            EXPECT_FALSE(pinned.count(victim));
            EXPECT_FALSE(pinned.count(fill));
        }
        for (const PageId page : decision.evictions) {
            check_unique(page);
            EXPECT_EQ(map.memoryOf(page), MemoryId::HBM);
            EXPECT_FALSE(pinned.count(page));
        }
        for (const PageId page : decision.promotions) {
            check_unique(page);
            EXPECT_EQ(map.memoryOf(page), MemoryId::DDR);
            EXPECT_FALSE(pinned.count(page));
        }
        EXPECT_LE(decision.promotions.size(),
                  map.hbmFreePages() + decision.evictions.size());
        EXPECT_LE(decision.pagesMoved(), 64u + 8u);

        // Apply the decision the way the system does.
        for (const PageId page : decision.evictions)
            ASSERT_TRUE(map.evictToDdr(page));
        for (const auto &[victim, fill] : decision.swaps)
            ASSERT_TRUE(map.swap(victim, fill));
        for (const PageId page : decision.promotions)
            ASSERT_TRUE(map.promoteToHbm(page));
        ASSERT_LE(map.hbmUsedPages(), capacity);

        // Pinned pages never moved.
        for (const PageId page : pinned)
            ASSERT_EQ(map.memoryOf(page), MemoryId::HBM);
    }
}

INSTANTIATE_TEST_SUITE_P(
    EnginesAndSeeds, EngineFuzzTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(7ULL, 77ULL, 777ULL)));

} // namespace
} // namespace ramp
