/**
 * @file
 * Tests for the migration tracking hardware
 * (src/migration/counters): Full Counters, MEA, remap cache.
 */

#include <gtest/gtest.h>

#include "migration/counters.hh"

namespace ramp
{
namespace
{

TEST(FullCounters, CountsReadsAndWritesSeparately)
{
    FullCounterTable counters;
    counters.onAccess(1, false);
    counters.onAccess(1, false);
    counters.onAccess(1, true);
    const auto counts = counters.countsOf(1);
    EXPECT_EQ(counts.reads, 2u);
    EXPECT_EQ(counts.writes, 1u);
    EXPECT_EQ(counts.hotness(), 3u);
    EXPECT_DOUBLE_EQ(counts.wrRatio(), 0.5);
}

TEST(FullCounters, UntouchedPageIsZero)
{
    FullCounterTable counters;
    EXPECT_EQ(counters.countsOf(77).hotness(), 0u);
}

TEST(FullCounters, SaturatesAtWidth)
{
    FullCounterTable counters(4); // max 15
    for (int i = 0; i < 100; ++i)
        counters.onAccess(1, false);
    EXPECT_EQ(counters.countsOf(1).reads, 15u);
    EXPECT_EQ(counters.maxCount(), 15u);
}

TEST(FullCounters, DefaultEightBitSaturation)
{
    FullCounterTable counters;
    for (int i = 0; i < 500; ++i)
        counters.onAccess(1, true);
    EXPECT_EQ(counters.countsOf(1).writes, 255u);
}

TEST(FullCounters, ResetClears)
{
    FullCounterTable counters;
    counters.onAccess(1, false);
    counters.reset();
    EXPECT_EQ(counters.countsOf(1).hotness(), 0u);
    EXPECT_TRUE(counters.touched().empty());
}

TEST(FullCounters, Means)
{
    FullCounterTable counters;
    counters.onAccess(1, false); // hot 1, wr 0
    counters.onAccess(2, true);
    counters.onAccess(2, true);
    counters.onAccess(2, false); // hot 3, wr 2
    EXPECT_DOUBLE_EQ(counters.meanHotness(), 2.0);
    EXPECT_DOUBLE_EQ(counters.meanWrRatio(), 1.0);
}

TEST(FullCounters, StorageBytesMatchPaperSection63)
{
    // 4.25M pages x 16 bits = 8.5 MB; x 8 bits = 4.25 MB.
    const std::uint64_t pages = (17ULL << 30) / 4096;
    EXPECT_EQ(FullCounterTable::storageBytes(pages, 8, true),
              pages * 2);
    EXPECT_EQ(FullCounterTable::storageBytes(pages, 8, false),
              pages);
    // 262K HBM pages with split 8-bit counters = 512 KB.
    const std::uint64_t hbm_pages = (1ULL << 30) / 4096;
    EXPECT_EQ(FullCounterTable::storageBytes(hbm_pages, 8, true),
              512ULL * 1024);
}

TEST(Mea, FindsTheMajorityElement)
{
    MeaTracker mea(4);
    for (int i = 0; i < 100; ++i) {
        mea.onAccess(7);
        if (i % 2 == 0)
            mea.onAccess(static_cast<PageId>(100 + i));
    }
    const auto hot = mea.hotPages();
    ASSERT_FALSE(hot.empty());
    EXPECT_EQ(hot[0], 7u);
}

TEST(Mea, CapacityBoundsTrackedSet)
{
    MeaTracker mea(4);
    for (PageId page = 0; page < 100; ++page)
        mea.onAccess(page);
    EXPECT_LE(mea.hotPages().size(), 4u);
}

TEST(Mea, DecrementEvictsWeakEntries)
{
    MeaTracker mea(2);
    mea.onAccess(1);
    mea.onAccess(2);
    // A conflicting access decrements both to 0 and drops them; the
    // new page is then inserted on its next arrival.
    mea.onAccess(3);
    mea.onAccess(3);
    const auto hot = mea.hotPages();
    ASSERT_EQ(hot.size(), 1u);
    EXPECT_EQ(hot[0], 3u);
}

TEST(Mea, HotPagesSortedByCount)
{
    MeaTracker mea(4);
    for (int i = 0; i < 5; ++i)
        mea.onAccess(1);
    for (int i = 0; i < 3; ++i)
        mea.onAccess(2);
    mea.onAccess(3);
    const auto hot = mea.hotPages();
    ASSERT_EQ(hot.size(), 3u);
    EXPECT_EQ(hot[0], 1u);
    EXPECT_EQ(hot[1], 2u);
    EXPECT_EQ(hot[2], 3u);
}

TEST(Mea, ResetClears)
{
    MeaTracker mea(4);
    mea.onAccess(1);
    mea.reset();
    EXPECT_TRUE(mea.hotPages().empty());
}

TEST(Mea, StorageIsTiny)
{
    EXPECT_EQ(MeaTracker::storageBytes(32), 256u);
}

TEST(RemapCache, MissThenHit)
{
    RemapCache cache(4, 10);
    EXPECT_EQ(cache.lookup(1), 10u);
    EXPECT_EQ(cache.lookup(1), 0u);
    EXPECT_EQ(cache.hits(), 1u);
    EXPECT_EQ(cache.misses(), 1u);
    EXPECT_DOUBLE_EQ(cache.hitRatio(), 0.5);
}

TEST(RemapCache, LruEviction)
{
    RemapCache cache(2, 10);
    cache.lookup(1);
    cache.lookup(2);
    cache.lookup(1); // 1 becomes MRU
    cache.lookup(3); // evicts 2
    EXPECT_EQ(cache.lookup(1), 0u);
    EXPECT_EQ(cache.lookup(2), 10u); // miss again
}

TEST(RemapCache, StorageMatchesMemPod)
{
    // 64 KB remap cache = 8192 entries x 8 B.
    EXPECT_EQ(RemapCache::storageBytes(8192), 64ULL * 1024);
}

TEST(CountersDeathTest, InvalidConfigs)
{
    EXPECT_EXIT(FullCounterTable{0}, ::testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(MeaTracker{0}, ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT((RemapCache{0, 1}), ::testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace ramp
