/**
 * @file
 * Tests for the migration engines (src/migration/engine).
 */

#include <gtest/gtest.h>

#include "migration/engine.hh"

namespace ramp
{
namespace
{

/** Feed n accesses of one page to an engine. */
void
touch(MigrationEngine &engine, PageId page, int reads, int writes,
      MemoryId mem)
{
    for (int i = 0; i < reads; ++i)
        engine.onAccess(page, false, mem);
    for (int i = 0; i < writes; ++i)
        engine.onAccess(page, true, mem);
}

TEST(PerfEngine, PromotesHotDdrPageIntoFreeFrame)
{
    PlacementMap map(2);
    map.place(1, MemoryId::HBM); // one free frame remains
    PerfFocusedMigration engine(1000);
    touch(engine, 50, 10, 0, MemoryId::DDR); // hot
    touch(engine, 51, 1, 0, MemoryId::DDR);  // cold (below mean)
    const auto decision = engine.onInterval(1000, map);
    ASSERT_EQ(decision.promotions.size(), 1u);
    EXPECT_EQ(decision.promotions[0], 50u);
    EXPECT_TRUE(decision.swaps.empty());
}

TEST(PerfEngine, SwapsColdHbmForHotDdr)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    PerfFocusedMigration engine(1000);
    touch(engine, 1, 1, 0, MemoryId::HBM);   // cold resident
    touch(engine, 50, 10, 0, MemoryId::DDR); // hot candidate
    const auto decision = engine.onInterval(1000, map);
    ASSERT_EQ(decision.swaps.size(), 1u);
    EXPECT_EQ(decision.swaps[0].first, 1u);
    EXPECT_EQ(decision.swaps[0].second, 50u);
}

TEST(PerfEngine, DoesNotSwapWhenResidentIsHotter)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    PerfFocusedMigration engine(1000);
    touch(engine, 1, 20, 0, MemoryId::HBM);
    touch(engine, 50, 10, 0, MemoryId::DDR);
    touch(engine, 51, 1, 0, MemoryId::DDR);
    const auto decision = engine.onInterval(1000, map);
    EXPECT_TRUE(decision.empty());
}

TEST(PerfEngine, RespectsCap)
{
    PlacementMap map(64);
    PerfFocusedMigration engine(1000, /*cap=*/4);
    touch(engine, 99, 100, 0, MemoryId::DDR);
    for (PageId page = 0; page < 32; ++page)
        touch(engine, page, 50, 0, MemoryId::DDR);
    const auto decision = engine.onInterval(1000, map);
    EXPECT_LE(decision.pagesMoved(), 4u);
}

TEST(PerfEngine, CountersResetEachInterval)
{
    PlacementMap map(4);
    map.place(1, MemoryId::HBM);
    PerfFocusedMigration engine(1000);
    touch(engine, 50, 10, 0, MemoryId::DDR);
    touch(engine, 51, 1, 0, MemoryId::DDR);
    (void)engine.onInterval(1000, map);
    // Nothing observed since: second interval decides nothing.
    const auto decision = engine.onInterval(2000, map);
    EXPECT_TRUE(decision.empty());
}

TEST(PerfEngine, SkipsPinnedPages)
{
    PlacementMap map(1);
    map.placePinned(1, MemoryId::HBM);
    PerfFocusedMigration engine(1000);
    touch(engine, 1, 1, 0, MemoryId::HBM);
    touch(engine, 50, 10, 0, MemoryId::DDR);
    const auto decision = engine.onInterval(1000, map);
    EXPECT_TRUE(decision.swaps.empty());
}

TEST(FcEngine, FillsWithHotLowRiskOnly)
{
    PlacementMap map(2);
    FcReliabilityMigration engine(1000);
    touch(engine, 10, 2, 18, MemoryId::DDR); // hot, write heavy
    touch(engine, 11, 18, 2, MemoryId::DDR); // hot, read heavy
    touch(engine, 12, 1, 1, MemoryId::DDR);  // cold
    const auto decision = engine.onInterval(1000, map);
    ASSERT_EQ(decision.promotions.size(), 1u);
    EXPECT_EQ(decision.promotions[0], 10u);
}

TEST(FcEngine, EvictsHighRiskResidents)
{
    PlacementMap map(2);
    map.place(1, MemoryId::HBM); // will look risky
    map.place(2, MemoryId::HBM); // write heavy, low risk
    FcReliabilityMigration engine(1000);
    touch(engine, 1, 30, 0, MemoryId::HBM);  // reads only: risky
    touch(engine, 2, 2, 28, MemoryId::HBM);  // writes: safe
    const auto decision = engine.onInterval(1000, map);
    ASSERT_EQ(decision.evictions.size(), 1u);
    EXPECT_EQ(decision.evictions[0], 1u);
}

TEST(FcEngine, PairsEvictionsWithFills)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    FcReliabilityMigration engine(1000);
    touch(engine, 1, 30, 0, MemoryId::HBM);   // risky resident
    touch(engine, 10, 5, 35, MemoryId::DDR);  // hot low-risk fill
    const auto decision = engine.onInterval(1000, map);
    ASSERT_EQ(decision.swaps.size(), 1u);
    EXPECT_EQ(decision.swaps[0].first, 1u);
    EXPECT_EQ(decision.swaps[0].second, 10u);
}

TEST(FcEngine, HardwareCostMatchesPaper)
{
    const FcReliabilityMigration fc(1000);
    const PerfFocusedMigration perf(1000);
    const std::uint64_t total = (17ULL << 30) / 4096;
    const std::uint64_t hbm = (1ULL << 30) / 4096;
    EXPECT_EQ(fc.hardwareCostBytes(total, hbm),
              8704ULL * 1024); // 8.5 MB
    EXPECT_EQ(fc.hardwareCostBytes(total, hbm) -
                  perf.hardwareCostBytes(total, hbm),
              4352ULL * 1024); // 4.25 MB additional
}

TEST(CcEngine, MeaPromotesHotPages)
{
    PlacementMap map(4);
    CrossCounterMigration engine(100, 10);
    for (int i = 0; i < 50; ++i)
        engine.onAccess(7, false, MemoryId::DDR);
    const auto decision = engine.onInterval(100, map);
    ASSERT_FALSE(decision.promotions.empty());
    EXPECT_EQ(decision.promotions[0], 7u);
}

TEST(CcEngine, PromotionCapRespected)
{
    PlacementMap map(64);
    CrossCounterMigration engine(100, 10, 32, /*promo cap=*/2);
    for (PageId page = 0; page < 20; ++page)
        for (int i = 0; i < 5; ++i)
            engine.onAccess(page, false, MemoryId::DDR);
    const auto decision = engine.onInterval(100, map);
    EXPECT_LE(decision.promotions.size(), 2u);
}

TEST(CcEngine, RiskUnitEvictsAtFcBoundary)
{
    PlacementMap map(2);
    map.place(1, MemoryId::HBM);
    map.place(2, MemoryId::HBM);
    // fc_per_mea = 2: the second onInterval is an FC boundary.
    CrossCounterMigration engine(100, 2);
    touch(engine, 1, 30, 0, MemoryId::HBM); // risky (reads only)
    touch(engine, 2, 0, 30, MemoryId::HBM); // safe
    (void)engine.onInterval(100, map);      // MEA-only tick
    const auto decision = engine.onInterval(200, map);
    ASSERT_EQ(decision.evictions.size(), 1u);
    EXPECT_EQ(decision.evictions[0], 1u);
}

TEST(CcEngine, SwapsAgainstResidentWhenFull)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    CrossCounterMigration engine(100, 10);
    for (int i = 0; i < 50; ++i)
        engine.onAccess(7, false, MemoryId::DDR);
    const auto decision = engine.onInterval(100, map);
    ASSERT_EQ(decision.swaps.size(), 1u);
    EXPECT_EQ(decision.swaps[0].first, 1u);
    EXPECT_EQ(decision.swaps[0].second, 7u);
}

TEST(CcEngine, RemapPenaltyOnlyOnMisses)
{
    CrossCounterMigration engine(100, 10);
    const Cycle first = engine.remapPenalty(5);
    const Cycle second = engine.remapPenalty(5);
    EXPECT_GT(first, 0u);
    EXPECT_EQ(second, 0u);
    EXPECT_GT(engine.remapCache().misses(), 0u);
}

TEST(CcEngine, HardwareCostMatchesPaperSection642)
{
    const CrossCounterMigration cc(100, 10);
    const std::uint64_t total = (17ULL << 30) / 4096;
    const std::uint64_t hbm = (1ULL << 30) / 4096;
    EXPECT_EQ(cc.hardwareCostBytes(total, hbm),
              676ULL * 1024); // 512 KB + 100 KB + 64 KB
}

TEST(EngineDeathTest, InvalidIntervals)
{
    EXPECT_EXIT(PerfFocusedMigration{0}, ::testing::ExitedWithCode(1),
                "");
    EXPECT_EXIT(FcReliabilityMigration{0},
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT((CrossCounterMigration{0, 1}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT((CrossCounterMigration{100, 10, 32, 0}),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace ramp
