/**
 * @file
 * Tests for the program-annotation machinery (src/annotation).
 */

#include <gtest/gtest.h>

#include "annotation/annotation.hh"
#include "hma/experiment.hh"

namespace ramp
{
namespace
{

/** Layout + profile fixture built from a real small workload. */
class AnnotationFixture : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        GeneratorOptions options;
        options.traceScale = 0.02;
        data_ = prepareWorkload(homogeneousWorkload("mcf"), options);
        for (const auto &trace : data_.traces)
            for (const auto &req : trace)
                profile_.recordAccess(pageOf(req.addr), req.isWrite);
        // Synthetic AVF: write-heavy pages get low risk.
        for (const auto &[page, stats] : profile_.pages())
            profile_.setAvf(page, 1.0 / (1.0 + stats.wrRatio()));
    }

    WorkloadData data_;
    PageProfile profile_;
};

TEST_F(AnnotationFixture, ProfileAggregatesPerProgramStructure)
{
    const auto structures = profileStructures(data_.layout, profile_);
    // mcf has 4 structures; homogeneous copies aggregate to 4
    // program-level entries.
    EXPECT_EQ(structures.size(), 4u);
    for (const auto &entry : structures) {
        EXPECT_EQ(entry.benchmark, "mcf");
        EXPECT_GT(entry.pages, 0u);
        // 16 instances aggregated: pages = 16x the spec size.
        const auto &profile = benchmarkProfile("mcf");
        bool found = false;
        for (const auto &spec : profile.structures) {
            if (spec.name == entry.structure) {
                EXPECT_EQ(entry.pages, 16 * spec.pages);
                found = true;
            }
        }
        EXPECT_TRUE(found) << entry.structure;
    }
}

TEST_F(AnnotationFixture, SelectionStopsAtCapacity)
{
    const auto structures = profileStructures(data_.layout, profile_);
    const auto selection =
        selectAnnotations(structures, 2000, profile_.meanAvf());
    EXPECT_GT(selection.count(), 0u);
    EXPECT_LE(selection.pinnedPages, 2000u);
}

TEST_F(AnnotationFixture, LargerCapacityNeverFewerAnnotations)
{
    const auto structures = profileStructures(data_.layout, profile_);
    const auto small =
        selectAnnotations(structures, 1000, profile_.meanAvf());
    const auto large =
        selectAnnotations(structures, 8000, profile_.meanAvf());
    EXPECT_GE(large.count(), small.count());
    EXPECT_GE(large.pinnedPages, small.pinnedPages);
}

TEST_F(AnnotationFixture, SelectionPrefersHighDensityLowRisk)
{
    const auto structures = profileStructures(data_.layout, profile_);
    const auto selection =
        selectAnnotations(structures, 100000, profile_.meanAvf());
    for (std::size_t i = 1; i < selection.annotations.size(); ++i) {
        EXPECT_GE(
            selection.annotations[i - 1].hotnessPerPage() + 1e-9,
            selection.annotations[i].hotnessPerPage());
    }
    for (const auto &annotation : selection.annotations)
        EXPECT_LE(annotation.avgAvf, profile_.meanAvf());
}

TEST_F(AnnotationFixture, PlacementPinsUpToCapacity)
{
    const auto structures = profileStructures(data_.layout, profile_);
    const auto selection =
        selectAnnotations(structures, 500, profile_.meanAvf());
    auto map =
        buildAnnotatedPlacement(data_.layout, selection, 500);
    EXPECT_EQ(map.hbmUsedPages(),
              std::min<std::uint64_t>(selection.pinnedPages, 500));
    for (const PageId page : map.hbmPages())
        EXPECT_TRUE(map.isPinned(page));
}

TEST_F(AnnotationFixture, PinnedPagesBelongToSelectedStructures)
{
    const auto structures = profileStructures(data_.layout, profile_);
    const auto selection =
        selectAnnotations(structures, 800, profile_.meanAvf());
    auto map =
        buildAnnotatedPlacement(data_.layout, selection, 800);
    for (const PageId page : map.hbmPages()) {
        const int idx = data_.layout.rangeOf(page);
        ASSERT_GE(idx, 0);
        const auto &range =
            data_.layout.ranges[static_cast<std::size_t>(idx)];
        bool selected = false;
        for (const auto &annotation : selection.annotations)
            selected = selected ||
                       annotation.structure == range.structure;
        EXPECT_TRUE(selected) << range.structure;
    }
}

TEST(AnnotationCounts, CactusNeedsMoreAnnotationsThanMcf)
{
    // cactusADM spreads its hot low-risk footprint over dozens of
    // small grid functions (Figure 17's outlier).
    GeneratorOptions options;
    options.traceScale = 0.05;
    const SystemConfig config = SystemConfig::scaledDefault();

    auto count_for = [&](const std::string &name) {
        const auto data =
            prepareWorkload(homogeneousWorkload(name), options);
        const auto base = runDdrOnly(config, data);
        return annotationsFor(data, base.profile,
                              config.hbmPages())
            .count();
    };
    EXPECT_GT(count_for("cactusADM"), count_for("mcf"));
}

TEST(StructureProfile, HotnessDensity)
{
    StructureProfile profile;
    profile.pages = 10;
    profile.reads = 70;
    profile.writes = 30;
    EXPECT_DOUBLE_EQ(profile.hotnessPerPage(), 10.0);
    StructureProfile empty;
    EXPECT_EQ(empty.hotnessPerPage(), 0.0);
}

} // namespace
} // namespace ramp
