/**
 * @file
 * Cross-module integration and property tests: full pipeline runs
 * over several workloads at reduced scale, checking the invariants
 * every paper experiment relies on.
 */

#include <gtest/gtest.h>

#include "cache/filter.hh"
#include "hma/experiment.hh"
#include "placement/quadrant.hh"

namespace ramp
{
namespace
{

GeneratorOptions
smallOptions()
{
    GeneratorOptions options;
    options.traceScale = 0.03;
    return options;
}

class WorkloadPipelineTest
    : public ::testing::TestWithParam<std::string>
{
  protected:
    WorkloadSpec spec() const
    {
        const auto name = GetParam();
        return name.rfind("mix", 0) == 0 ? mixWorkload(name)
                                         : homogeneousWorkload(name);
    }
};

TEST_P(WorkloadPipelineTest, BaselineInvariantsHold)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data = prepareWorkload(spec(), smallOptions());
    const auto base = runDdrOnly(config, data);

    EXPECT_GT(base.ipc, 0.0);
    EXPECT_LE(base.ipc,
              static_cast<double>(config.cores) * config.issueWidth);
    EXPECT_EQ(base.hbmAccessFraction, 0.0);
    EXPECT_GT(base.memoryAvf, 0.0);
    EXPECT_LT(base.memoryAvf, 1.0);

    // Every AVF in range; footprint within the layout.
    for (const auto &[page, stats] : base.profile.pages()) {
        EXPECT_GE(stats.avf, 0.0);
        EXPECT_LE(stats.avf, 1.0);
        EXPECT_GE(data.layout.rangeOf(page), 0);
    }
}

TEST_P(WorkloadPipelineTest, PerfPlacementTradesSerForIpc)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data = prepareWorkload(spec(), smallOptions());
    const auto base = runDdrOnly(config, data);
    const auto perf = runStaticPolicy(
        config, data, StaticPolicy::PerfFocused, base.profile);

    EXPECT_GT(perf.ipc, base.ipc);
    EXPECT_GT(perf.ser, base.ser);
    EXPECT_GT(perf.hbmAccessFraction, 0.0);
    EXPECT_LE(perf.hbmAccessFraction, 1.0);
}

TEST_P(WorkloadPipelineTest, QuadrantsArePopulated)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data = prepareWorkload(spec(), smallOptions());
    const auto base = runDdrOnly(config, data);
    const auto quadrants = analyzeQuadrants(base.profile);
    EXPECT_EQ(quadrants.total(), base.profile.footprintPages());
    // All four quadrants exist (Figure 4's observation).
    EXPECT_GT(quadrants.hotHighRisk, 0u);
    EXPECT_GT(quadrants.hotLowRisk, 0u);
    EXPECT_GT(quadrants.coldHighRisk, 0u);
    EXPECT_GT(quadrants.coldLowRisk, 0u);
}

INSTANTIATE_TEST_SUITE_P(Workloads, WorkloadPipelineTest,
                         ::testing::Values("mcf", "milc", "astar",
                                           "cactusADM", "mix1",
                                           "mix5"));

TEST(Integration, CacheFilterPipelineFeedsSimulator)
{
    // CPU-level generation -> cache filtering -> HMA simulation:
    // the full paper methodology end to end.
    GeneratorOptions options;
    options.traceScale = 0.01;
    options.cpuLevel = true;
    const auto spec = homogeneousWorkload("gcc");
    const auto layout = buildLayout(spec);
    const auto cpu = generateTraces(spec, layout, options);

    HierarchyConfig hierarchy;
    FilterStats filter_stats;
    const auto mem = filterTraces(cpu, hierarchy, &filter_stats);
    EXPECT_LT(filter_stats.passRatio(), 1.0);

    const SystemConfig config = SystemConfig::scaledDefault();
    HmaSystem system(config);
    const auto result =
        system.run(mem, PlacementMap(config.hbmPages()));
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_EQ(result.requests, filter_stats.memAccesses);
}

TEST(Integration, MigrationConservesHbmOccupancy)
{
    GeneratorOptions options;
    options.traceScale = 0.05;
    SystemConfig config = SystemConfig::scaledDefault();
    config.fcIntervalCycles = 100000;
    const auto data =
        prepareWorkload(homogeneousWorkload("soplex"), options);
    const auto base = runDdrOnly(config, data);
    const auto result = runDynamic(
        config, data, DynamicScheme::PerfFocused, base.profile);
    EXPECT_GT(result.migratedPages, 0u);
    // Throughput must remain plausible despite migration cost.
    EXPECT_GT(result.ipc, 0.3 * base.ipc);
}

TEST(Integration, SerOrderingAcrossPolicies)
{
    GeneratorOptions options;
    options.traceScale = 0.05;
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data = prepareWorkload(mixWorkload("mix2"), options);
    const auto base = runDdrOnly(config, data);

    const auto perf = runStaticPolicy(
        config, data, StaticPolicy::PerfFocused, base.profile);
    const auto rel = runStaticPolicy(
        config, data, StaticPolicy::ReliabilityFocused,
        base.profile);
    const auto balanced = runStaticPolicy(
        config, data, StaticPolicy::Balanced, base.profile);

    // The paper's reliability ordering: DDR-only is the floor, the
    // performance-focused placement the ceiling, and both
    // reliability-aware placements sit strictly in between. (rel vs
    // balanced is not strictly ordered: balanced may underfill the
    // HBM and carry even less AVF mass than rel-focused.)
    EXPECT_LE(base.ser, rel.ser * 1.001);
    EXPECT_LE(base.ser, balanced.ser * 1.001);
    EXPECT_LE(rel.ser, perf.ser * 1.001);
    EXPECT_LE(balanced.ser, perf.ser * 1.001);
}

TEST(Integration, TraceScaleChangesLengthNotShape)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    GeneratorOptions small;
    small.traceScale = 0.02;
    GeneratorOptions large;
    large.traceScale = 0.04;
    const auto spec = homogeneousWorkload("xsbench");
    const auto small_data = prepareWorkload(spec, small);
    const auto large_data = prepareWorkload(spec, large);
    const auto small_stats = computeStats(small_data.traces);
    const auto large_stats = computeStats(large_data.traces);
    EXPECT_NEAR(static_cast<double>(large_stats.requests) /
                    static_cast<double>(small_stats.requests),
                2.0, 0.01);
    EXPECT_NEAR(small_stats.mpki(), large_stats.mpki(),
                small_stats.mpki() * 0.05);
}

} // namespace
} // namespace ramp
