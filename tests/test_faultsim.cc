/**
 * @file
 * Tests for the Monte-Carlo fault simulator
 * (src/reliability/faultsim).
 */

#include <gtest/gtest.h>

#include "reliability/faultsim.hh"

namespace ramp
{
namespace
{

TEST(FaultSim, ZeroFitProducesNoErrors)
{
    FaultSimConfig config = FaultSimConfig::ddrChipKill();
    config.rates = FitRates{};
    const FaultSim sim(config);
    const auto result = sim.run(1000, 1);
    EXPECT_EQ(result.noError, 1000u);
    EXPECT_EQ(result.uncorrected, 0u);
    EXPECT_EQ(result.pUncorrected, 0.0);
}

TEST(FaultSim, DrawFaultRespectsGeometry)
{
    const FaultSim sim(FaultSimConfig::ddrChipKill());
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        const auto fault = sim.drawFault(rng);
        EXPECT_LT(fault.chip, sim.config().chips);
        if (fault.bank != faultWildcard)
            EXPECT_LT(fault.bank, sim.config().geometry.banks);
        if (fault.row != faultWildcard)
            EXPECT_LT(fault.row, sim.config().geometry.rows);
        if (fault.column != faultWildcard)
            EXPECT_LT(fault.column, sim.config().geometry.columns);
    }
}

TEST(FaultSim, DrawFaultCoversAllModes)
{
    const FaultSim sim(FaultSimConfig::ddrChipKill());
    Rng rng(5);
    std::array<int, numFaultModes> seen{};
    for (int i = 0; i < 20000; ++i)
        ++seen[static_cast<std::size_t>(sim.drawFault(rng).mode)];
    for (int m = 0; m < numFaultModes; ++m)
        EXPECT_GT(seen[static_cast<std::size_t>(m)], 0)
            << faultModeName(static_cast<FaultMode>(m));
}

TEST(FaultSim, SecDedUncorrectedScalesWithFit)
{
    auto low = FaultSimConfig::hbmSecDed(1.0);
    auto high = FaultSimConfig::hbmSecDed(8.0);
    const auto low_result = FaultSim(low).run(40000, 7);
    const auto high_result = FaultSim(high).run(40000, 7);
    EXPECT_GT(high_result.pUncorrected, low_result.pUncorrected);
}

TEST(FaultSim, ChipKillFarMoreReliableThanSecDed)
{
    auto secded = FaultSimConfig::hbmSecDed(1.0);
    // Same FIT rates and data size, different organisation/ECC.
    auto chipkill = FaultSimConfig::ddrChipKill();
    chipkill.fitBoost = 30.0;
    const auto secded_result = FaultSim(secded).run(50000, 11);
    const auto chipkill_result = FaultSim(chipkill).run(200000, 11);
    ASSERT_GT(secded_result.fitUncorrectedPerGB, 0.0);
    EXPECT_GT(secded_result.fitUncorrectedPerGB,
              50.0 * chipkill_result.fitUncorrectedPerGB);
}

TEST(FaultSim, BoostRescalingIsConsistentForSecDed)
{
    // SEC-DED failures are single-fault dominated: a boosted run
    // rescaled by 1/boost should estimate the same probability.
    auto plain = FaultSimConfig::hbmSecDed(3.0);
    auto boosted = plain;
    boosted.fitBoost = 4.0;
    const auto p1 = FaultSim(plain).run(80000, 13).pUncorrected;
    const auto p2 = FaultSim(boosted).run(80000, 13).pUncorrected;
    ASSERT_GT(p1, 0.0);
    EXPECT_NEAR(p2 / p1, 1.0, 0.35);
}

TEST(FaultSim, OutcomeCountsSumToTrials)
{
    const FaultSim sim(FaultSimConfig::hbmSecDed());
    const auto result = sim.run(5000, 17);
    EXPECT_EQ(result.noError + result.corrected + result.uncorrected,
              5000u);
    EXPECT_GT(result.avgFaultsPerTrial, 0.0);
}

TEST(FaultSim, FitPerRankDerivation)
{
    const FaultSim sim(FaultSimConfig::hbmSecDed(3.0));
    const auto result = sim.run(50000, 19);
    // FIT = P / hours * 1e9; cross-check the arithmetic.
    EXPECT_NEAR(result.fitUncorrectedPerRank,
                result.pUncorrected / sim.config().hours * 1e9,
                1e-9);
    const double gb = static_cast<double>(sim.config().dataBytes) /
                      static_cast<double>(1ULL << 30);
    EXPECT_NEAR(result.fitUncorrectedPerGB,
                result.fitUncorrectedPerRank / gb, 1e-9);
}

TEST(FaultSim, DeterministicForSeed)
{
    const FaultSim sim(FaultSimConfig::hbmSecDed());
    const auto a = sim.run(20000, 23);
    const auto b = sim.run(20000, 23);
    EXPECT_EQ(a.uncorrected, b.uncorrected);
    EXPECT_EQ(a.corrected, b.corrected);
}

TEST(FaultSimDeathTest, BadConfigIsFatal)
{
    FaultSimConfig config = FaultSimConfig::ddrChipKill();
    config.chips = 0;
    EXPECT_EXIT(FaultSim{config}, ::testing::ExitedWithCode(1), "");
    FaultSimConfig bad_boost = FaultSimConfig::ddrChipKill();
    bad_boost.fitBoost = 0.5;
    EXPECT_EXIT(FaultSim{bad_boost}, ::testing::ExitedWithCode(1),
                "");
}

} // namespace
} // namespace ramp
