/**
 * @file
 * Tests for the health monitor and epoch timeline (src/health).
 *
 * Locks the subsystem's contracts: the rule grammar round-trips and
 * rejects malformed input, `for=` hysteresis fires exactly once per
 * sustained breach, the timeline's final metrics record is an exact
 * registry delta even under concurrent pool writers, the rendered
 * timeline of a placement-service run is byte-identical at any pool
 * width, and an injected fault storm keeps the monitor, the
 * decision ledger, and the telemetry counters in exact agreement on
 * how many rules fired.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "eventlog/eventlog.hh"
#include "faults/injector.hh"
#include "health/health.hh"
#include "health/rules.hh"
#include "hma/system.hh"
#include "perf/json.hh"
#include "runner/pool.hh"
#include "service/service.hh"
#include "telemetry/telemetry.hh"

namespace ramp
{
namespace
{

/** Fresh, enabled monitor per test; everything off afterwards. */
class HealthTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        telemetry::resetAll();
        telemetry::setEnabled(true);
        eventlog::reset();
        eventlog::setEnabled(true);
        health::reset();
        health::setEnabled(true);
    }

    void TearDown() override
    {
        health::setEnabled(false);
        health::reset();
        eventlog::setEnabled(false);
        eventlog::reset();
        telemetry::setEnabled(false);
        telemetry::resetAll();
    }
};

TEST(HealthRules, CanonicalFormsRoundTrip)
{
    const char *canonical[] = {
        "alert:p99_slowdown>2,for=3",
        "warn:fairness<0.9,for=2",
        "alert:shard_degraded",
        "warn:degraded",
        "alert:slowdown>1.5,tenant=7",
        "warn:hbm_share<0.25,for=4,tenant=2",
        "alert:shard_occupancy>0.95,shard=3",
        "warn:churn>4096",
        "alert:fault_backlog>128,for=2",
    };
    for (const char *text : canonical) {
        std::string error;
        const auto rules = health::parseHealthRules(text, error);
        ASSERT_TRUE(error.empty()) << text << ": " << error;
        ASSERT_EQ(rules.size(), 1u) << text;
        EXPECT_EQ(health::formatHealthRule(rules[0]), text);
    }

    // A full rule set round-trips through the ';' join, and a
    // re-parse of the canonical spelling yields the same rules.
    const std::string set =
        "alert:shard_degraded;alert:p99_slowdown>2,for=3;"
        "warn:fairness<0.9,for=2";
    std::string error;
    const auto rules = health::parseHealthRules(set, error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(rules.size(), 3u);
    EXPECT_EQ(health::formatHealthRules(rules), set);
    const auto again = health::parseHealthRules(
        health::formatHealthRules(rules), error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_EQ(again, rules);

    // Whitespace and number spellings normalize to canonical form.
    const auto spaced = health::parseHealthRules(
        " alert : p99_slowdown > 2.0 , for = 3 ", error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(spaced.size(), 1u);
    EXPECT_EQ(health::formatHealthRule(spaced[0]),
              "alert:p99_slowdown>2,for=3");

    EXPECT_EQ(health::defaultRules(), rules);
}

TEST(HealthRules, RejectsMalformedInput)
{
    const char *bad[] = {
        "",                              // no rules at all
        "alert",                         // no signal
        "fatal:p99_slowdown>2",          // unknown severity
        "alert:p99_slowdown",            // numeric without threshold
        "alert:p99_slowdown>",           // empty threshold
        "alert:p99_slowdown>abc",        // non-numeric threshold
        "alert:shard_degraded>1",        // boolean with threshold
        "alert:no_such_signal>1",        // unknown signal
        "alert:p99_slowdown>2,for=0",    // for= must be >= 1
        "alert:p99_slowdown>2,for=abc",  // non-numeric for=
        "alert:p99_slowdown>2,bogus=1",  // unknown field
        "alert:p99_slowdown>2,tenant=1", // tenant= on run-wide signal
        "alert:slowdown>2,shard=0",      // shard= on tenant signal
        ";;",                            // only separators
    };
    for (const char *text : bad) {
        std::string error;
        const auto rules = health::parseHealthRules(text, error);
        EXPECT_FALSE(error.empty())
            << "'" << text << "' parsed as "
            << health::formatHealthRules(rules);
        EXPECT_TRUE(rules.empty()) << text;
    }
}

TEST_F(HealthTest, HysteresisFiresOncePerSustainedBreach)
{
    std::string error;
    health::setRules(
        health::parseHealthRules("alert:p99_slowdown>2,for=3",
                                 error));
    ASSERT_TRUE(error.empty()) << error;

    std::size_t callbacks = 0;
    health::addAlertCallback(
        [&](const health::HealthAlert &) { ++callbacks; });

    auto sample = [](std::uint64_t epoch, double p99) {
        health::TimelineSample s;
        s.source = "system";
        s.epoch = epoch;
        s.p99Slowdown = p99;
        return s;
    };

    // Five consecutive breaches: the rule fires exactly once, at
    // the third (for=3), not again while the breach persists.
    for (std::uint64_t epoch = 1; epoch <= 5; ++epoch)
        health::record(sample(epoch, 3.0));
    auto fired = health::alerts();
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0].epoch, 3u);
    EXPECT_EQ(fired[0].rule, 0u);
    EXPECT_EQ(fired[0].severity, health::Severity::Alert);
    EXPECT_EQ(fired[0].signal, health::HealthSignal::P99Slowdown);
    EXPECT_DOUBLE_EQ(fired[0].value, 3.0);
    EXPECT_DOUBLE_EQ(fired[0].threshold, 2.0);
    EXPECT_EQ(callbacks, 1u);

    // Two breaches, a recovery, two more: never reaches for=3.
    health::record(sample(6, 1.0)); // reset
    health::record(sample(7, 3.0));
    health::record(sample(8, 3.0));
    health::record(sample(9, 1.0)); // reset again
    health::record(sample(10, 3.0));
    health::record(sample(11, 3.0));
    EXPECT_EQ(health::alerts().size(), 1u);

    // A second sustained breach after recovery fires again.
    health::record(sample(12, 3.0));
    fired = health::alerts();
    ASSERT_EQ(fired.size(), 2u);
    EXPECT_EQ(fired[1].epoch, 12u);
    EXPECT_EQ(callbacks, 2u);

    // An unmeasured signal (NaN) is not a breach.
    health::record(sample(13, health::unmeasured));
    health::record(sample(14, 3.0));
    health::record(sample(15, 3.0));
    health::record(sample(16, 3.0));
    EXPECT_EQ(health::alerts().size(), 3u);
}

TEST_F(HealthTest, MetricsDeltaExactUnderConcurrentWriters)
{
    // Counts accumulated before enable must not leak into the
    // delta: re-enable after priming the counter.
    telemetry::metrics().counter("test.health.delta").add(1000);
    telemetry::metrics().counter("pool.fake").add(7);
    health::setEnabled(true); // recapture the baseline

    runner::ThreadPool pool(4);
    constexpr std::uint64_t tasks = 256;
    pool.runIndexed(tasks, [](std::size_t index) {
        telemetry::metrics()
            .counter("test.health.delta")
            .add(index % 5 + 1);
        telemetry::metrics().counter("pool.fake").add(1);
    });
    std::uint64_t expected = 0;
    for (std::uint64_t index = 0; index < tasks; ++index)
        expected += index % 5 + 1;

    // The metrics record is the last JSONL line of the timeline.
    const std::string timeline = health::timelineJsonl("test");
    const std::size_t cut = timeline.rfind("{\"type\": \"metrics\"");
    ASSERT_NE(cut, std::string::npos);
    perf::JsonValue metrics;
    std::string error;
    std::string last = timeline.substr(cut);
    ASSERT_FALSE(last.empty());
    last.pop_back(); // trailing newline
    ASSERT_TRUE(perf::parseJson(last, metrics, error)) << error;
    const perf::JsonValue *counters = metrics.find("counters");
    ASSERT_NE(counters, nullptr);

    // Exact delta — the sharded counters summed exactly, and the
    // pre-enable 1000 stayed out of it.
    EXPECT_DOUBLE_EQ(
        counters->numberOr("test.health.delta", -1),
        static_cast<double>(expected));
    // Host-dependent families never appear, even when touched.
    EXPECT_EQ(counters->find("pool.fake"), nullptr);
}

service::TenantSpec
healthTenantSpec(std::uint32_t id)
{
    service::TenantSpec spec;
    spec.id = id;
    spec.footprintPages = 192;
    spec.requests = 3000;
    spec.cores = 2;
    spec.zipfSkew = 0.8;
    spec.writeFraction = 0.25;
    spec.seed = 300 + id;
    spec.hbmQuotaFraction = 0.5;
    spec.relClass = static_cast<service::ReliabilityClass>(id % 3);
    return spec;
}

std::string
serviceTimeline(unsigned jobs)
{
    // Mirror the harness enable order: telemetry, ledger, monitor.
    telemetry::resetAll();
    telemetry::setEnabled(true);
    eventlog::reset();
    eventlog::setEnabled(true);
    health::reset();
    health::setEnabled(true);
    health::setRules(health::defaultRules());

    SystemConfig system = SystemConfig::scaledDefault();
    system.cores = 4;
    service::ServiceConfig config;
    config.shards = 2;
    config.epochs = 3;
    config.soloBaselines = true;
    std::string error;
    config.faultPlan = parseFaultPlan(
        "uncorrected:page=3,epoch=2;"
        "capacity:tier=hbm,pct=25,epoch=2",
        error);
    EXPECT_TRUE(error.empty()) << error;
    config.faultShard = 0;

    service::PlacementService placement(system, config);
    for (std::uint32_t id = 1; id <= 6; ++id)
        EXPECT_TRUE(placement.admit(healthTenantSpec(id)));
    runner::ThreadPool pool(jobs);
    placement.run(pool);
    return health::timelineJsonl("test_health");
}

TEST_F(HealthTest, ServiceTimelineInvariantUnderJobs)
{
#ifdef RAMP_HEALTH_DISABLED
    GTEST_SKIP() << "epoch capture hooks compiled out";
#endif
    const std::string serial = serviceTimeline(1);
    const std::string wide = serviceTimeline(4);
    EXPECT_GT(health::sampleCount(), 0u);
    EXPECT_EQ(serial, wide);
    // The run produced service-source samples (the global epochs)
    // and at least one fired rule (shard 0 degrades at epoch 2).
    EXPECT_NE(serial.find("\"source\": \"service\""),
              std::string::npos);
    EXPECT_NE(serial.find("\"type\": \"alert\""),
              std::string::npos);
}

TEST_F(HealthTest, StormAlertsAgreeAcrossLedgerAndTelemetry)
{
#ifdef RAMP_HEALTH_DISABLED
    GTEST_SKIP() << "epoch capture hooks compiled out";
#endif
    health::setRules(health::defaultRules());
    const auto before = telemetry::metrics().snapshot();

    SystemConfig config = SystemConfig::scaledDefault();
    config.cores = 2;
    config.fcIntervalCycles = 10000;
    config.meaIntervalCycles = 1000;

    std::vector<CoreTrace> traces(2);
    for (int core = 0; core < 2; ++core) {
        for (int i = 0; i < 3000; ++i) {
            MemRequest req;
            const int page = (i * 7 + core) % 16;
            req.addr = static_cast<Addr>(page) * pageSize +
                       static_cast<Addr>(i % 64) * lineSize;
            req.gap = 20;
            req.core = static_cast<CoreId>(core);
            req.isWrite = (i % 4) == 0;
            traces[static_cast<std::size_t>(core)].push_back(req);
        }
    }
    PlacementMap map(config.hbmPages());
    for (PageId page = 0; page < 16; ++page)
        map.place(page, MemoryId::HBM);

    InjectorConfig faults;
    std::string error;
    faults.script = parseFaultPlan(
        "uncorrected:page=3,epoch=1;"
        "capacity:tier=hbm,pct=25,epoch=2;"
        "correctable:page=1,count=4,epoch=3",
        error);
    ASSERT_TRUE(error.empty()) << error;
    faults.epochCycles = 2000;
    FaultInjector injector(faults);

    eventlog::RunScope scope("storm/static");
    HmaSystem system(config);
    const SimResult result =
        system.run(traces, map, nullptr, &injector);
    ASSERT_TRUE(result.degraded);

    // The capacity loss degrades the run's one shard, so the
    // default shard_degraded rule (for=1) fired at least once.
    const auto fired = health::alerts();
    ASSERT_FALSE(fired.empty());
    std::uint64_t alert_count = 0;
    std::uint64_t warn_count = 0;
    for (const health::HealthAlert &alert : fired) {
        if (alert.severity == health::Severity::Alert)
            ++alert_count;
        else
            ++warn_count;
    }

    // Monitor <-> telemetry agreement.
    const auto after = telemetry::metrics().snapshot();
    EXPECT_EQ(after.counterOr("health.alerts") -
                  before.counterOr("health.alerts"),
              alert_count);
    EXPECT_EQ(after.counterOr("health.warns") -
                  before.counterOr("health.warns"),
              warn_count);
    EXPECT_EQ(after.counterOr("health.samples") -
                  before.counterOr("health.samples"),
              health::sampleCount());

    // Monitor <-> ledger agreement: one alert-kind record per
    // fired rule, carrying the same rule index and epoch.
    std::istringstream ledger(eventlog::toJsonl("test_health"));
    std::string line;
    std::size_t ledger_alerts = 0;
    while (std::getline(ledger, line)) {
        if (line.find("\"kind\": \"alert\"") == std::string::npos)
            continue;
        perf::JsonValue record;
        ASSERT_TRUE(perf::parseJson(line, record, error)) << error;
        EXPECT_EQ(record.stringOr("run", ""), "storm/static");
        EXPECT_EQ(record.stringOr("signal", ""), "shard_degraded");
        EXPECT_EQ(record.numberOr("rule", -1), 0.0);
        ++ledger_alerts;
    }
    EXPECT_EQ(ledger_alerts, fired.size());

    // And the timeline document quotes the same counts it carries.
    const std::string timeline =
        health::timelineJsonl("test_health");
    std::istringstream lines(timeline);
    std::string header;
    ASSERT_TRUE(std::getline(lines, header));
    perf::JsonValue head;
    ASSERT_TRUE(perf::parseJson(header, head, error)) << error;
    EXPECT_EQ(head.stringOr("schema", ""), "ramp-timeline-v1");
    EXPECT_EQ(head.numberOr("alerts", -1),
              static_cast<double>(fired.size()));
    EXPECT_EQ(head.numberOr("samples", -1),
              static_cast<double>(health::sampleCount()));
}

} // namespace
} // namespace ramp
