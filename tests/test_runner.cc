/**
 * @file
 * Tests for the parallel experiment runner (src/runner): the
 * deterministic thread pool, the profile cache (memory and disk
 * layers), the result sink, and FaultSim trial sharding.
 */

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reliability/faultsim.hh"
#include "runner/harness.hh"

namespace ramp
{
namespace
{

using runner::ProfileCache;
using runner::ProfiledWorkloadPtr;
using runner::RatioColumn;
using runner::RunnerOptions;
using runner::ThreadPool;

GeneratorOptions
smallTraces()
{
    GeneratorOptions options;
    options.traceScale = 0.02;
    return options;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.migratedPages, b.migratedPages);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.mpki, b.mpki);
    EXPECT_DOUBLE_EQ(a.ser, b.ser);
    EXPECT_DOUBLE_EQ(a.memoryAvf, b.memoryAvf);
    EXPECT_DOUBLE_EQ(a.avgReadLatency, b.avgReadLatency);
    EXPECT_DOUBLE_EQ(a.hbmAccessFraction, b.hbmAccessFraction);
}

TEST(TaskSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(runner::taskSeed(42, 0), runner::taskSeed(42, 0));
    EXPECT_NE(runner::taskSeed(42, 0), runner::taskSeed(42, 1));
    EXPECT_NE(runner::taskSeed(42, 0), runner::taskSeed(43, 0));
    // Zero inputs must still produce a usable stream.
    EXPECT_NE(runner::taskSeed(0, 0), 0u);
}

TEST(ThreadPool, MapIndexCollectsInOrder)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    const auto squares =
        pool.mapIndex(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.runIndexed(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, NestedMapDoesNotDeadlock)
{
    ThreadPool pool(2);
    const auto sums = pool.mapIndex(8, [&](std::size_t outer) {
        const auto inner = pool.mapIndex(
            8, [&](std::size_t i) { return outer * 100 + i; });
        std::size_t sum = 0;
        for (const auto value : inner)
            sum += value;
        return sum;
    });
    for (std::size_t outer = 0; outer < sums.size(); ++outer)
        EXPECT_EQ(sums[outer], outer * 800 + 28);
}

TEST(ThreadPool, SimulationPassesMatchSerial)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data =
        prepareWorkload(homogeneousWorkload("astar"), smallTraces());
    const SimResult base = runDdrOnly(config, data);

    const std::vector<StaticPolicy> policies = {
        StaticPolicy::PerfFocused, StaticPolicy::Balanced,
        StaticPolicy::WrRatio, StaticPolicy::Wr2Ratio};

    std::vector<SimResult> serial;
    for (const StaticPolicy policy : policies)
        serial.push_back(
            runStaticPolicy(config, data, policy, base.profile));

    ThreadPool pool(4);
    const auto parallel =
        pool.map(policies, [&](const StaticPolicy policy) {
            return runStaticPolicy(config, data, policy,
                                   base.profile);
        });

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(parallel[i], serial[i]);
}

TEST(ProfileCache, MemoryHitSharesOneComputation)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    ProfileCache cache;
    const auto first = cache.get(
        config, homogeneousWorkload("astar"), smallTraces());
    const auto second = cache.get(
        config, homogeneousWorkload("astar"), smallTraces());
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().memoryHits, 1u);
    EXPECT_EQ(cache.stats().diskHits, 0u);
    EXPECT_GT(first->profile().footprintPages(), 0u);
}

TEST(ProfileCache, DistinctKeysDistinctEntries)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    SystemConfig other = config;
    other.robSize = config.robSize / 2;
    ProfileCache cache;
    const auto a = cache.get(config, homogeneousWorkload("astar"),
                             smallTraces());
    const auto b = cache.get(other, homogeneousWorkload("astar"),
                             smallTraces());
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_NE(
        ProfileCache::fingerprint(config,
                                  homogeneousWorkload("astar"),
                                  smallTraces()),
        ProfileCache::fingerprint(other,
                                  homogeneousWorkload("astar"),
                                  smallTraces()));
}

TEST(ProfileCache, DiskLayerSkipsReprofiling)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const std::string dir =
        ::testing::TempDir() + "ramp_runner_cache";
    std::filesystem::remove_all(dir); // stale runs must not hit
    const auto spec = homogeneousWorkload("astar");

    ProfileCache writer;
    writer.setDiskDir(dir);
    const auto computed = writer.get(config, spec, smallTraces());
    EXPECT_EQ(writer.stats().misses, 1u);
    EXPECT_EQ(writer.stats().diskWrites, 1u);

    // A fresh process-equivalent: new cache, same directory.
    ProfileCache reader;
    reader.setDiskDir(dir);
    const auto loaded = reader.get(config, spec, smallTraces());
    EXPECT_EQ(reader.stats().misses, 0u);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    expectSameResult(loaded->base, computed->base);
    EXPECT_EQ(loaded->profile().footprintPages(),
              computed->profile().footprintPages());
    for (const auto &[page, stats] : computed->profile().pages()) {
        const auto restored = loaded->profile().statsOf(page);
        EXPECT_EQ(restored.reads, stats.reads);
        EXPECT_EQ(restored.writes, stats.writes);
        EXPECT_DOUBLE_EQ(restored.avf, stats.avf);
    }
    // Traces are regenerated, not stored: same shape either way.
    ASSERT_EQ(loaded->data.traces.size(),
              computed->data.traces.size());
}

TEST(ProfileCache, BaselineRoundTripRejectsMismatch)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data =
        prepareWorkload(homogeneousWorkload("astar"), smallTraces());
    const SimResult base = runDdrOnly(config, data);

    const auto bytes =
        ProfileCache::serializeBaseline("key-a", base);
    SimResult restored;
    ASSERT_TRUE(
        ProfileCache::deserializeBaseline(bytes, "key-a", restored));
    expectSameResult(restored, base);

    SimResult rejected;
    EXPECT_FALSE(ProfileCache::deserializeBaseline(bytes, "key-b",
                                                   rejected));
    auto truncated = bytes;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(ProfileCache::deserializeBaseline(
        truncated, "key-a", rejected));
}

TEST(FaultSim, ShardingIndependentOfPool)
{
    const FaultSim sim(FaultSimConfig::hbmSecDed());
    // 125000 trials = two shards; run serially and on two pools.
    const auto serial = sim.run(125000, 42);
    ThreadPool pool2(2), pool4(4);
    const auto on2 = sim.run(125000, 42, &pool2);
    const auto on4 = sim.run(125000, 42, &pool4);
    for (const auto *result : {&on2, &on4}) {
        EXPECT_DOUBLE_EQ(result->pUncorrected, serial.pUncorrected);
        EXPECT_DOUBLE_EQ(result->fitUncorrectedPerRank,
                         serial.fitUncorrectedPerRank);
        EXPECT_DOUBLE_EQ(result->fitUncorrectedPerGB,
                         serial.fitUncorrectedPerGB);
    }
}

TEST(RatioColumn, MeanAndCells)
{
    RatioColumn empty;
    EXPECT_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.averageCell(), "-");

    RatioColumn column;
    EXPECT_DOUBLE_EQ(column.add(0.8), 0.8);
    column.add(0.9);
    EXPECT_NEAR(column.mean(), 0.85, 1e-12);
    EXPECT_EQ(column.averageCell(), "0.85x");
    EXPECT_EQ(column.lossCell(), "15.0%");
    EXPECT_DOUBLE_EQ(
        runner::meanRatio(std::span<const double>(column.values())),
        column.mean());
}

TEST(RunnerOptions, ParsesFlagsAndPositionals)
{
    const char *argv[] = {"tool",  "--jobs", "3",     "alpha",
                          "--json", "out.json", "-j",  "5",
                          "--cache-dir", "cachedir", "beta"};
    const auto options = RunnerOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(options.jobs, 5u);
    EXPECT_EQ(options.jsonPath, "out.json");
    EXPECT_EQ(options.cacheDir, "cachedir");
    ASSERT_EQ(options.positional.size(), 2u);
    EXPECT_EQ(options.positional[0], "alpha");
    EXPECT_EQ(options.positional[1], "beta");
}

TEST(Harness, RecordsAndWritesJson)
{
    RunnerOptions options;
    options.jobs = 2;
    options.jsonPath =
        ::testing::TempDir() + "ramp_runner_report.json";
    std::remove(options.jsonPath.c_str());

    runner::Harness harness("test_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const auto perf = runStaticPolicy(
        harness.config(), wl->data, StaticPolicy::PerfFocused,
        wl->profile());
    harness.record(wl->name(), perf);
    // profile() recorded the baseline, record() the perf pass.
    EXPECT_EQ(harness.report().passes().size(), 2u);
    EXPECT_EQ(harness.finish(), 0);

    std::ifstream in(options.jsonPath);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    EXPECT_NE(json.find("\"tool\": \"test_tool\""),
              std::string::npos);
    EXPECT_NE(json.find("\"profile_cache\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"astar\""),
              std::string::npos);
    std::remove(options.jsonPath.c_str());
}

} // namespace
} // namespace ramp
