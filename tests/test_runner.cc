/**
 * @file
 * Tests for the parallel experiment runner (src/runner): the
 * deterministic thread pool, the profile cache (memory and disk
 * layers), the result sink, fault containment in runPasses(), and
 * FaultSim trial sharding.
 */

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "reliability/faultsim.hh"
#include "runner/harness.hh"

namespace ramp
{
namespace
{

using runner::Harness;
using runner::PassDesc;
using runner::PassError;
using runner::PassErrorCode;
using runner::PassStatus;
using runner::ProfileCache;
using runner::ProfiledWorkloadPtr;
using runner::RatioColumn;
using runner::RunnerOptions;
using runner::ThreadPool;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

GeneratorOptions
smallTraces()
{
    GeneratorOptions options;
    options.traceScale = 0.02;
    return options;
}

void
expectSameResult(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.migratedPages, b.migratedPages);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
    EXPECT_DOUBLE_EQ(a.mpki, b.mpki);
    EXPECT_DOUBLE_EQ(a.ser, b.ser);
    EXPECT_DOUBLE_EQ(a.memoryAvf, b.memoryAvf);
    EXPECT_DOUBLE_EQ(a.avgReadLatency, b.avgReadLatency);
    EXPECT_DOUBLE_EQ(a.hbmAccessFraction, b.hbmAccessFraction);
}

TEST(TaskSeed, DeterministicAndDistinct)
{
    EXPECT_EQ(runner::taskSeed(42, 0), runner::taskSeed(42, 0));
    EXPECT_NE(runner::taskSeed(42, 0), runner::taskSeed(42, 1));
    EXPECT_NE(runner::taskSeed(42, 0), runner::taskSeed(43, 0));
    // Zero inputs must still produce a usable stream.
    EXPECT_NE(runner::taskSeed(0, 0), 0u);
}

TEST(ThreadPool, MapIndexCollectsInOrder)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    const auto squares =
        pool.mapIndex(100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100u);
    for (std::size_t i = 0; i < squares.size(); ++i)
        EXPECT_EQ(squares[i], i * i);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.runIndexed(hits.size(), [&](std::size_t i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &hit : hits)
        EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, NestedMapDoesNotDeadlock)
{
    ThreadPool pool(2);
    const auto sums = pool.mapIndex(8, [&](std::size_t outer) {
        const auto inner = pool.mapIndex(
            8, [&](std::size_t i) { return outer * 100 + i; });
        std::size_t sum = 0;
        for (const auto value : inner)
            sum += value;
        return sum;
    });
    for (std::size_t outer = 0; outer < sums.size(); ++outer)
        EXPECT_EQ(sums[outer], outer * 800 + 28);
}

TEST(ThreadPool, RethrowsFirstTaskException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.runIndexed(64,
                                 [](std::size_t i) {
                                     if (i == 5)
                                         throw std::invalid_argument(
                                             "task 5 boom");
                                 }),
                 std::invalid_argument);
    // The pool must stay usable after a failed batch.
    const auto values =
        pool.mapIndex(8, [](std::size_t i) { return i + 1; });
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(values[i], i + 1);
}

TEST(ThreadPool, CancellationStopsDispatch)
{
    runner::clearCancellation();
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    runner::requestCancellation();
    pool.runIndexed(100, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 0);
    runner::clearCancellation();
    pool.runIndexed(10, [&](std::size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(ran.load(), 10);
}

TEST(PassErrorTaxonomy, ClassifiesCommonExceptions)
{
    const auto classify = [](auto &&thrower) {
        try {
            thrower();
        } catch (...) {
            return runner::describeException(
                std::current_exception());
        }
        return runner::ErrorInfo{};
    };
    EXPECT_EQ(classify([] {
                  throw std::invalid_argument("bad spec");
              }).code,
              PassErrorCode::InvalidInput);
    EXPECT_EQ(classify([] { throw std::bad_alloc(); }).code,
              PassErrorCode::OutOfMemory);
    EXPECT_EQ(classify([] {
                  throw std::logic_error("broken invariant");
              }).code,
              PassErrorCode::Internal);
    EXPECT_EQ(classify([] {
                  throw PassError(PassErrorCode::Corrupt,
                                  "bad checksum");
              }).code,
              PassErrorCode::Corrupt);
    EXPECT_EQ(classify([] { throw 42; }).code,
              PassErrorCode::Unknown);
    EXPECT_EQ(classify([] {
                  throw std::invalid_argument("msg text");
              }).message,
              "msg text");
    EXPECT_STREQ(
        runner::passErrorCodeName(PassErrorCode::InvalidInput),
        "invalid-input");
    EXPECT_STREQ(runner::passStatusName(PassStatus::Failed),
                 "failed");
}

TEST(ThreadPool, SimulationPassesMatchSerial)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data =
        prepareWorkload(homogeneousWorkload("astar"), smallTraces());
    const SimResult base = runDdrOnly(config, data);

    const std::vector<StaticPolicy> policies = {
        StaticPolicy::PerfFocused, StaticPolicy::Balanced,
        StaticPolicy::WrRatio, StaticPolicy::Wr2Ratio};

    std::vector<SimResult> serial;
    for (const StaticPolicy policy : policies)
        serial.push_back(
            runStaticPolicy(config, data, policy, base.profile));

    ThreadPool pool(4);
    const auto parallel =
        pool.map(policies, [&](const StaticPolicy policy) {
            return runStaticPolicy(config, data, policy,
                                   base.profile);
        });

    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectSameResult(parallel[i], serial[i]);
}

TEST(ProfileCache, MemoryHitSharesOneComputation)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    ProfileCache cache;
    const auto first = cache.get(
        config, homogeneousWorkload("astar"), smallTraces());
    const auto second = cache.get(
        config, homogeneousWorkload("astar"), smallTraces());
    EXPECT_EQ(first.get(), second.get());
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().memoryHits, 1u);
    EXPECT_EQ(cache.stats().diskHits, 0u);
    EXPECT_GT(first->profile().footprintPages(), 0u);
}

TEST(ProfileCache, DistinctKeysDistinctEntries)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    SystemConfig other = config;
    other.robSize = config.robSize / 2;
    ProfileCache cache;
    const auto a = cache.get(config, homogeneousWorkload("astar"),
                             smallTraces());
    const auto b = cache.get(other, homogeneousWorkload("astar"),
                             smallTraces());
    EXPECT_NE(a.get(), b.get());
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_NE(
        ProfileCache::fingerprint(config,
                                  homogeneousWorkload("astar"),
                                  smallTraces()),
        ProfileCache::fingerprint(other,
                                  homogeneousWorkload("astar"),
                                  smallTraces()));
}

TEST(ProfileCache, DiskLayerSkipsReprofiling)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const std::string dir =
        ::testing::TempDir() + "ramp_runner_cache";
    std::filesystem::remove_all(dir); // stale runs must not hit
    const auto spec = homogeneousWorkload("astar");

    ProfileCache writer;
    writer.setDiskDir(dir);
    const auto computed = writer.get(config, spec, smallTraces());
    EXPECT_EQ(writer.stats().misses, 1u);
    EXPECT_EQ(writer.stats().diskWrites, 1u);

    // A fresh process-equivalent: new cache, same directory.
    ProfileCache reader;
    reader.setDiskDir(dir);
    const auto loaded = reader.get(config, spec, smallTraces());
    EXPECT_EQ(reader.stats().misses, 0u);
    EXPECT_EQ(reader.stats().diskHits, 1u);

    expectSameResult(loaded->base, computed->base);
    EXPECT_EQ(loaded->profile().footprintPages(),
              computed->profile().footprintPages());
    for (const auto &[page, stats] : computed->profile().pages()) {
        const auto restored = loaded->profile().statsOf(page);
        EXPECT_EQ(restored.reads, stats.reads);
        EXPECT_EQ(restored.writes, stats.writes);
        EXPECT_DOUBLE_EQ(restored.avf, stats.avf);
    }
    // Traces are regenerated, not stored: same shape either way.
    ASSERT_EQ(loaded->data.traces.size(),
              computed->data.traces.size());
}

TEST(ProfileCache, BaselineRoundTripRejectsMismatch)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto data =
        prepareWorkload(homogeneousWorkload("astar"), smallTraces());
    const SimResult base = runDdrOnly(config, data);

    const auto bytes =
        ProfileCache::serializeBaseline("key-a", base);
    SimResult restored;
    ASSERT_TRUE(
        ProfileCache::deserializeBaseline(bytes, "key-a", restored));
    expectSameResult(restored, base);

    SimResult rejected;
    EXPECT_FALSE(ProfileCache::deserializeBaseline(bytes, "key-b",
                                                   rejected));
    auto truncated = bytes;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(ProfileCache::deserializeBaseline(
        truncated, "key-a", rejected));
}

TEST(FaultSim, ShardingIndependentOfPool)
{
    const FaultSim sim(FaultSimConfig::hbmSecDed());
    // 125000 trials = two shards; run serially and on two pools.
    const auto serial = sim.run(125000, 42);
    ThreadPool pool2(2), pool4(4);
    const auto on2 = sim.run(125000, 42, &pool2);
    const auto on4 = sim.run(125000, 42, &pool4);
    for (const auto *result : {&on2, &on4}) {
        EXPECT_DOUBLE_EQ(result->pUncorrected, serial.pUncorrected);
        EXPECT_DOUBLE_EQ(result->fitUncorrectedPerRank,
                         serial.fitUncorrectedPerRank);
        EXPECT_DOUBLE_EQ(result->fitUncorrectedPerGB,
                         serial.fitUncorrectedPerGB);
    }
}

TEST(RatioColumn, MeanAndCells)
{
    RatioColumn empty;
    EXPECT_EQ(empty.mean(), 0.0);
    EXPECT_EQ(empty.averageCell(), "-");

    RatioColumn column;
    EXPECT_DOUBLE_EQ(column.add(0.8), 0.8);
    column.add(0.9);
    EXPECT_NEAR(column.mean(), 0.85, 1e-12);
    EXPECT_EQ(column.averageCell(), "0.85x");
    EXPECT_EQ(column.lossCell(), "15.0%");
    EXPECT_DOUBLE_EQ(
        runner::meanRatio(std::span<const double>(column.values())),
        column.mean());
}

TEST(RunnerOptions, ParsesFlagsAndPositionals)
{
    const char *argv[] = {"tool",  "--jobs", "3",     "alpha",
                          "--json", "out.json", "-j",  "5",
                          "--cache-dir", "cachedir", "beta"};
    const auto options = RunnerOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(options.jobs, 5u);
    EXPECT_EQ(options.jsonPath, "out.json");
    EXPECT_EQ(options.cacheDir, "cachedir");
    ASSERT_EQ(options.positional.size(), 2u);
    EXPECT_EQ(options.positional[0], "alpha");
    EXPECT_EQ(options.positional[1], "beta");
}

TEST(RunnerOptions, ParsesCheckpointAndTimeoutFlags)
{
    const char *argv[] = {"tool", "--checkpoint", "ckptdir",
                          "--pass-timeout", "2.5", "--bench-out",
                          "BENCH_tool.json"};
    const auto options = RunnerOptions::parse(
        static_cast<int>(std::size(argv)),
        const_cast<char **>(argv));
    EXPECT_EQ(options.checkpointDir, "ckptdir");
    EXPECT_DOUBLE_EQ(options.passTimeout, 2.5);
    EXPECT_EQ(options.benchPath, "BENCH_tool.json");
}

TEST(DerivedRatios, HitRateAndAccessShareSemantics)
{
    // hitRate: hits out of hits+misses.
    EXPECT_DOUBLE_EQ(runner::hitRate(3, 1), 0.75);
    EXPECT_DOUBLE_EQ(runner::hitRate(0, 5), 0.0);
    EXPECT_DOUBLE_EQ(runner::hitRate(5, 0), 1.0);
    EXPECT_TRUE(std::isnan(runner::hitRate(0, 0)));

    // accessShare: one memory's share of the combined traffic. The
    // arithmetic matches hitRate but the second argument is the
    // *other* memory's traffic, not a miss count.
    EXPECT_DOUBLE_EQ(runner::accessShare(600, 400), 0.6);
    EXPECT_DOUBLE_EQ(runner::accessShare(0, 400), 0.0);
    EXPECT_TRUE(std::isnan(runner::accessShare(0, 0)));
}

TEST(RunnerOptions, RejectsBadFlagsWithUsageErrors)
{
    const auto expect_usage = [](std::vector<const char *> argv) {
        try {
            RunnerOptions::parse(static_cast<int>(argv.size()),
                                 const_cast<char **>(argv.data()));
            FAIL() << "expected PassError(Usage)";
        } catch (const PassError &error) {
            EXPECT_EQ(error.code(), PassErrorCode::Usage);
            EXPECT_FALSE(std::string(error.what()).empty());
        }
    };
    expect_usage({"tool", "--jobs", "zero"});
    expect_usage({"tool", "--jobs", "0"});
    expect_usage({"tool", "--pass-timeout", "nope"});
    expect_usage({"tool", "--pass-timeout", "-1"});
    expect_usage({"tool", "--checkpoint"});
    expect_usage({"tool", "--json"});
}

TEST(Harness, FailingPassBecomesFailedRow)
{
    RunnerOptions options;
    options.jobs = 2;
    options.jsonPath =
        ::testing::TempDir() + "ramp_runner_contained.json";
    std::remove(options.jsonPath.c_str());

    Harness harness("contained_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const SystemConfig &config = harness.config();

    const std::vector<PassDesc> descs = {
        {wl->name(), Harness::passKey(wl, "good-a")},
        {wl->name(), Harness::passKey(wl, "bad")},
        {wl->name(), Harness::passKey(wl, "good-b")},
    };
    const auto outcomes = harness.runPasses(
        descs, [&](std::size_t i) {
            if (i == 1)
                throw std::invalid_argument("synthetic failure");
            return runStaticPolicy(config, wl->data,
                                   StaticPolicy::PerfFocused,
                                   wl->profile());
        });

    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].status, PassStatus::Ok);
    EXPECT_EQ(outcomes[1].status, PassStatus::Failed);
    EXPECT_EQ(outcomes[1].error, PassErrorCode::InvalidInput);
    EXPECT_EQ(outcomes[1].message, "synthetic failure");
    EXPECT_EQ(outcomes[1].result.instructions, 0u);
    EXPECT_EQ(outcomes[2].status, PassStatus::Ok);

    // One pass failed: the campaign still completed, the report
    // carries the failure, and the exit code is nonzero.
    testing::internal::CaptureStderr();
    EXPECT_EQ(harness.finish(), 3);
    const std::string summary =
        testing::internal::GetCapturedStderr();
    EXPECT_NE(summary.find("did not complete"), std::string::npos);
    EXPECT_NE(summary.find("synthetic failure"), std::string::npos);

    const std::string json = slurp(options.jsonPath);
    EXPECT_NE(json.find("\"status\": \"failed\""),
              std::string::npos);
    EXPECT_NE(json.find("\"error\": \"invalid-input\""),
              std::string::npos);
    EXPECT_NE(json.find("\"message\": \"synthetic failure\""),
              std::string::npos);
    EXPECT_NE(json.find("\"status\": \"ok\""), std::string::npos);
    std::remove(options.jsonPath.c_str());
}

TEST(Harness, TimeoutFlagsSlowPasses)
{
    RunnerOptions options;
    options.jobs = 1;
    options.passTimeout = 1e-9; // everything overstays
    Harness harness("timeout_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const SystemConfig &config = harness.config();

    const std::vector<PassDesc> descs = {
        {wl->name(), Harness::passKey(wl, "slow")}};
    const auto outcomes = harness.runPasses(
        descs, [&](std::size_t) {
            return runStaticPolicy(config, wl->data,
                                   StaticPolicy::PerfFocused,
                                   wl->profile());
        });
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, PassStatus::Timeout);
    // The metrics are valid (the pass did finish)...
    EXPECT_TRUE(outcomes[0].ok());
    EXPECT_GT(outcomes[0].result.instructions, 0u);
    // ...but the campaign still reports the budget violation.
    testing::internal::CaptureStderr();
    EXPECT_EQ(harness.finish(), 3);
    testing::internal::GetCapturedStderr();
}

TEST(Harness, CancellationSkipsRemainingPasses)
{
    runner::clearCancellation();
    RunnerOptions options;
    options.jobs = 1;
    Harness harness("cancel_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const SystemConfig &config = harness.config();

    std::vector<PassDesc> descs;
    for (const char *label : {"one", "two", "three"})
        descs.push_back({wl->name(), Harness::passKey(wl, label)});

    std::atomic<int> ran{0};
    try {
        testing::internal::CaptureStderr();
        harness.runPasses(descs, [&](std::size_t i) {
            ran.fetch_add(1, std::memory_order_relaxed);
            if (i == 0)
                runner::requestCancellation();
            return runStaticPolicy(config, wl->data,
                                   StaticPolicy::PerfFocused,
                                   wl->profile());
        });
        testing::internal::GetCapturedStderr();
        FAIL() << "expected PassError(Cancelled)";
    } catch (const PassError &error) {
        testing::internal::GetCapturedStderr();
        EXPECT_EQ(error.code(), PassErrorCode::Cancelled);
    }
    runner::clearCancellation();

    // Only the first pass ran; every recorded pass is non-Ok (the
    // first completed after the flag was raised, so its result is
    // untrusted and demoted to skipped).
    EXPECT_EQ(ran.load(), 1);
    const auto passes = harness.report().passes();
    std::size_t skipped = 0;
    for (const auto &pass : passes)
        if (pass.status == PassStatus::Skipped)
            ++skipped;
    EXPECT_EQ(skipped, 3u);
}

TEST(Harness, PassKeyCoversFingerprintAndLabel)
{
    RunnerOptions options;
    options.jobs = 1;
    Harness harness("key_tool", options);
    const auto astar =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const auto mcf =
        harness.profile(homogeneousWorkload("mcf"), smallTraces());
    EXPECT_NE(Harness::passKey(astar, "perf"),
              Harness::passKey(astar, "rel"));
    EXPECT_NE(Harness::passKey(astar, "perf"),
              Harness::passKey(mcf, "perf"));
    EXPECT_EQ(Harness::passKey(astar, "perf"),
              Harness::passKey(astar, "perf"));
}

TEST(Harness, RecordsAndWritesJson)
{
    RunnerOptions options;
    options.jobs = 2;
    options.jsonPath =
        ::testing::TempDir() + "ramp_runner_report.json";
    std::remove(options.jsonPath.c_str());

    runner::Harness harness("test_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const auto perf = runStaticPolicy(
        harness.config(), wl->data, StaticPolicy::PerfFocused,
        wl->profile());
    harness.record(wl->name(), perf);
    // profile() recorded the baseline, record() the perf pass.
    EXPECT_EQ(harness.report().passes().size(), 2u);
    EXPECT_EQ(harness.finish(), 0);

    std::ifstream in(options.jsonPath);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string json = buffer.str();
    EXPECT_NE(json.find("\"tool\": \"test_tool\""),
              std::string::npos);
    EXPECT_NE(json.find("\"profile_cache\""), std::string::npos);
    EXPECT_NE(json.find("\"ipc\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\": \"astar\""),
              std::string::npos);
    std::remove(options.jsonPath.c_str());
}

} // namespace
} // namespace ramp
