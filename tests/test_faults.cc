/**
 * @file
 * Tests for the online fault-injection subsystem (src/faults):
 * the --inject grammar, the deterministic injector, the response
 * state machine, and end-to-end graceful degradation through
 * HmaSystem.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "faults/injector.hh"
#include "faults/plan.hh"
#include "faults/response.hh"
#include "hma/system.hh"
#include "migration/engine.hh"
#include "placement/profile.hh"

namespace ramp
{
namespace
{

// ---------------------------------------------------------------
// Plan grammar

TEST(FaultPlan, ParsesAndRoundTrips)
{
    std::string error;
    const auto plan = parseFaultPlan(
        "correctable:page=64,count=8,epoch=2;"
        "uncorrected:page=1234,epoch=3;"
        "capacity:tier=hbm,pct=25,epoch=5;"
        "capacity:tier=ddr,pages=16,epoch=7",
        error);
    ASSERT_TRUE(error.empty()) << error;
    ASSERT_EQ(plan.size(), 4u);
    EXPECT_EQ(plan[0].kind, FaultEventKind::Correctable);
    EXPECT_EQ(plan[0].page, 64u);
    EXPECT_EQ(plan[0].count, 8u);
    EXPECT_EQ(plan[1].kind, FaultEventKind::Uncorrected);
    EXPECT_EQ(plan[1].page, 1234u);
    EXPECT_EQ(plan[1].epoch, 3u);
    EXPECT_EQ(plan[2].kind, FaultEventKind::CapacityLoss);
    EXPECT_EQ(plan[2].tier, MemoryId::HBM);
    EXPECT_DOUBLE_EQ(plan[2].pct, 25.0);
    EXPECT_EQ(plan[3].tier, MemoryId::DDR);
    EXPECT_EQ(plan[3].pages, 16u);

    // format -> parse -> format is a fixed point (the canonical
    // spelling), like the RegionScheme grammar.
    const std::string canonical = formatFaultPlan(plan);
    std::string error2;
    const auto reparsed = parseFaultPlan(canonical, error2);
    ASSERT_TRUE(error2.empty()) << error2;
    EXPECT_EQ(formatFaultPlan(reparsed), canonical);
}

TEST(FaultPlan, AcceptsAnyFieldOrder)
{
    std::string a_err, b_err;
    const auto a =
        parseFaultPlan("uncorrected:epoch=4,page=9", a_err);
    const auto b =
        parseFaultPlan("uncorrected:page=9,epoch=4", b_err);
    ASSERT_TRUE(a_err.empty() && b_err.empty());
    EXPECT_EQ(formatFaultPlan(a), formatFaultPlan(b));
}

TEST(FaultPlan, RejectsMalformedPlans)
{
    const char *bad[] = {
        "",                                  // no events
        "meltdown:page=1",                   // unknown kind
        "uncorrected:epoch=2",               // strike without a page
        "correctable:page=1,count=0",        // empty burst
        "capacity:tier=hbm,epoch=2",         // loss without a size
        "capacity:tier=hbm,pct=150",         // over 100%
        "capacity:tier=l4,pct=10",           // unknown tier
        "uncorrected:page=-3",               // negative number
        "uncorrected:page=1,epoch",          // field without value
        "uncorrected:page=1,epock=3"         // unknown field
    };
    for (const char *text : bad) {
        std::string error;
        const auto plan = parseFaultPlan(text, error);
        EXPECT_TRUE(plan.empty()) << text;
        EXPECT_FALSE(error.empty()) << text;
    }
}

// ---------------------------------------------------------------
// Injector

TEST(FaultInjector, FaultsPerEpochFollowsFitMath)
{
    const FitRates rates = FitRates::fieldStudyDdr();
    // total FIT x chips / 1e9, scaled to the epoch's hours.
    const double expected = rates.total() * 18 / 1e9 * 2.5;
    EXPECT_DOUBLE_EQ(
        InjectorConfig::faultsPerEpoch(rates, 18, 2.5), expected);
}

TEST(FaultInjector, ScriptFiresOnceWithCatchUp)
{
    InjectorConfig config;
    std::string error;
    config.script = parseFaultPlan(
        "uncorrected:page=7,epoch=2;correctable:page=3,epoch=4",
        error);
    ASSERT_TRUE(error.empty());
    FaultInjector injector(config);

    EXPECT_TRUE(injector.onEpoch(1).empty());
    // Epoch 3 never saw onEpoch(2): the epoch-2 event catches up.
    const auto at3 = injector.onEpoch(3);
    ASSERT_EQ(at3.size(), 1u);
    EXPECT_EQ(at3[0].kind, FaultEventKind::Uncorrected);
    EXPECT_EQ(at3[0].page, 7u);
    EXPECT_EQ(at3[0].source, FaultSource::Script);
    // Fires exactly once.
    const auto at4 = injector.onEpoch(4);
    ASSERT_EQ(at4.size(), 1u);
    EXPECT_EQ(at4[0].kind, FaultEventKind::Correctable);
    EXPECT_TRUE(injector.onEpoch(5).empty());
    EXPECT_EQ(injector.produced(), 2u);
}

TEST(FaultInjector, PoissonScheduleIsSeedDeterministic)
{
    InjectorConfig config;
    config.poissonFaultsPerEpoch = 1.5;
    config.seed = 42;
    FaultInjector a(config), b(config);
    for (PageId page = 0; page < 64; ++page) {
        a.onAccess(page, page % 3 == 0, MemoryId::DDR);
        b.onAccess(page, page % 3 == 0, MemoryId::DDR);
    }
    for (std::uint64_t epoch = 1; epoch <= 10; ++epoch) {
        const auto fa = a.onEpoch(epoch);
        const auto fb = b.onEpoch(epoch);
        ASSERT_EQ(fa.size(), fb.size()) << "epoch " << epoch;
        for (std::size_t i = 0; i < fa.size(); ++i) {
            EXPECT_EQ(fa[i].kind, fb[i].kind);
            EXPECT_EQ(fa[i].page, fb[i].page);
            EXPECT_EQ(fa[i].source, FaultSource::Poisson);
        }
    }
    EXPECT_EQ(a.produced(), b.produced());
    EXPECT_GT(a.produced(), 0u);
}

TEST(FaultInjector, HammerStrikesTheNeighbourDeterministically)
{
    InjectorConfig config;
    config.hammerThreshold = 4;
    FaultInjector injector(config);
    for (int i = 0; i < 5; ++i) // over threshold, under 2x
        injector.onAccess(7, false, MemoryId::HBM);
    for (int i = 0; i < 8; ++i) // at 2x: escalates
        injector.onAccess(20, true, MemoryId::HBM);
    const auto faults = injector.onEpoch(1);
    ASSERT_EQ(faults.size(), 2u);
    // Victims in ascending aggressor order: page+1 each.
    EXPECT_EQ(faults[0].page, 8u);
    EXPECT_EQ(faults[0].kind, FaultEventKind::Correctable);
    EXPECT_EQ(faults[1].page, 21u);
    EXPECT_EQ(faults[1].kind, FaultEventKind::Uncorrected);
    EXPECT_EQ(faults[0].source, FaultSource::Hammer);
    // Activation counts reset per epoch.
    EXPECT_TRUE(injector.onEpoch(2).empty());
}

// ---------------------------------------------------------------
// Response state

TEST(ResponseState, BackoffGrowsAndGivesUp)
{
    ResponseState response(3);
    response.queueRemap(5, 1);
    response.queueRemap(5, 1); // dedup
    EXPECT_EQ(response.backlog(), 1u);
    EXPECT_TRUE(response.dueRemaps(1).empty()); // due next epoch
    EXPECT_EQ(response.dueRemaps(2),
              (std::vector<PageId>{5}));

    EXPECT_FALSE(response.backoff(5, 2)); // attempt 1: due at 2+2
    EXPECT_TRUE(response.dueRemaps(3).empty());
    EXPECT_EQ(response.dueRemaps(4), (std::vector<PageId>{5}));
    EXPECT_FALSE(response.backoff(5, 4)); // attempt 2: due at 4+4
    EXPECT_TRUE(response.backoff(5, 8));  // attempt 3: out of tries
    EXPECT_EQ(response.backlog(), 0u);
    EXPECT_EQ(response.retries(), 3u);

    EXPECT_FALSE(response.degraded());
    response.setDegraded();
    EXPECT_TRUE(response.degraded());
}

TEST(ResponseState, SweepVictimsColdestFirstSkipsPinned)
{
    PlacementMap map(4);
    map.place(1, MemoryId::HBM);
    map.place(2, MemoryId::HBM);
    map.place(3, MemoryId::HBM);
    map.placePinned(4, MemoryId::HBM);

    PageProfile profile;
    for (int i = 0; i < 9; ++i)
        profile.recordAccess(1, false); // hottest
    profile.recordAccess(3, false);     // lukewarm
    // page 2 untouched: coldest

    const auto victims = sweepVictims(map, profile, 8);
    EXPECT_EQ(victims, (std::vector<PageId>{2, 3, 1}));
    // Budget truncates from the cold end.
    EXPECT_EQ(sweepVictims(map, profile, 1),
              (std::vector<PageId>{2}));
    EXPECT_TRUE(sweepVictims(map, profile, 0).empty());
}

// ---------------------------------------------------------------
// End to end through HmaSystem

SystemConfig
faultConfig()
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.cores = 2;
    config.fcIntervalCycles = 10000;
    config.meaIntervalCycles = 1000;
    return config;
}

std::vector<CoreTrace>
faultTraces(int pages, int requests)
{
    std::vector<CoreTrace> traces(2);
    for (int core = 0; core < 2; ++core) {
        for (int i = 0; i < requests; ++i) {
            MemRequest req;
            const int page = (i * 7 + core) % pages;
            req.addr = static_cast<Addr>(page) * pageSize +
                       static_cast<Addr>(i % 64) * lineSize;
            req.gap = 20;
            req.core = static_cast<CoreId>(core);
            req.isWrite = (i % 4) == 0;
            traces[static_cast<std::size_t>(core)].push_back(req);
        }
    }
    return traces;
}

PlacementMap
hbmHeavyPlacement(const SystemConfig &config, int pages)
{
    PlacementMap map(config.hbmPages());
    const int in_hbm = std::min<int>(
        pages, static_cast<int>(config.hbmPages()));
    for (PageId page = 0;
         page < static_cast<PageId>(in_hbm); ++page)
        map.place(page, MemoryId::HBM);
    return map;
}

InjectorConfig
stormConfig()
{
    InjectorConfig faults;
    std::string error;
    faults.script = parseFaultPlan(
        "uncorrected:page=3,epoch=1;"
        "capacity:tier=hbm,pct=25,epoch=2;"
        "correctable:page=1,count=4,epoch=3",
        error);
    EXPECT_TRUE(error.empty()) << error;
    faults.epochCycles = 2000;
    return faults;
}

TEST(FaultSystem, InactiveInjectorMatchesNoInjector)
{
    const auto config = faultConfig();
    const auto traces = faultTraces(16, 3000);

    HmaSystem plain_system(config);
    const auto plain = plain_system.run(
        traces, hbmHeavyPlacement(config, 16));

    InjectorConfig idle; // no sources configured
    idle.epochCycles = 2000;
    FaultInjector injector(idle);
    HmaSystem faulted_system(config);
    const auto faulted = faulted_system.run(
        traces, hbmHeavyPlacement(config, 16), nullptr, &injector);

    EXPECT_EQ(plain.makespan, faulted.makespan);
    EXPECT_EQ(plain.ipc, faulted.ipc);
    EXPECT_EQ(plain.ser, faulted.ser);
    EXPECT_EQ(faulted.faultsInjected, 0u);
    EXPECT_FALSE(faulted.degraded);
}

TEST(FaultSystem, StormDegradesButCompletesStatic)
{
    const auto config = faultConfig();
    const auto traces = faultTraces(16, 3000);

    FaultInjector injector(stormConfig());
    HmaSystem system(config);
    const auto result = system.run(
        traces, hbmHeavyPlacement(config, 16), nullptr, &injector);

    EXPECT_GT(result.makespan, 0u); // completed, did not abort
    EXPECT_GE(result.faultsInjected, 3u);
    EXPECT_EQ(result.pagesRetired, 1u);
    EXPECT_GT(result.capacityLostPages, 0u);
    EXPECT_TRUE(result.degraded);
}

TEST(FaultSystem, StormDegradesButCompletesUnderEngines)
{
    const auto config = faultConfig();
    const auto traces = faultTraces(16, 3000);

    FcReliabilityMigration fc(config.fcIntervalCycles, 64);
    CrossCounterMigration cc(config.meaIntervalCycles,
                             config.fcPerMea());
    for (MigrationEngine *engine :
         {static_cast<MigrationEngine *>(&fc),
          static_cast<MigrationEngine *>(&cc)}) {
        FaultInjector injector(stormConfig());
        HmaSystem system(config);
        const auto result = system.run(
            traces, hbmHeavyPlacement(config, 16), engine,
            &injector);
        EXPECT_GT(result.makespan, 0u) << engine->name();
        EXPECT_TRUE(result.degraded) << engine->name();
        EXPECT_EQ(result.pagesRetired, 1u) << engine->name();
    }
}

TEST(FaultSystem, SameSeedSameSchedule)
{
    const auto config = faultConfig();
    const auto traces = faultTraces(16, 3000);

    InjectorConfig faults = stormConfig();
    faults.poissonFaultsPerEpoch = 0.5;
    faults.seed = 99;

    SimResult results[2];
    for (auto &result : results) {
        FaultInjector injector(faults);
        HmaSystem system(config);
        result = system.run(traces, hbmHeavyPlacement(config, 16),
                            nullptr, &injector);
    }
    EXPECT_EQ(results[0].makespan, results[1].makespan);
    EXPECT_EQ(results[0].ser, results[1].ser);
    EXPECT_EQ(results[0].faultsInjected,
              results[1].faultsInjected);
    EXPECT_EQ(results[0].pagesRetired, results[1].pagesRetired);
    EXPECT_EQ(results[0].responseMoves, results[1].responseMoves);
    EXPECT_GT(results[0].faultsInjected, 3u); // Poisson fired too
}

} // namespace
} // namespace ramp
