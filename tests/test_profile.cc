/**
 * @file
 * Tests for page profiles and quadrant analysis
 * (src/placement/profile, src/placement/quadrant).
 */

#include <gtest/gtest.h>

#include "placement/profile.hh"
#include "placement/quadrant.hh"

namespace ramp
{
namespace
{

TEST(PageStats, Ratios)
{
    PageStats stats;
    stats.reads = 4;
    stats.writes = 8;
    EXPECT_EQ(stats.hotness(), 12u);
    EXPECT_DOUBLE_EQ(stats.wrRatio(), 2.0);
    EXPECT_DOUBLE_EQ(stats.wr2Ratio(), 16.0);
}

TEST(PageStats, ZeroReadsUseFloorOfOne)
{
    PageStats stats;
    stats.writes = 5;
    EXPECT_DOUBLE_EQ(stats.wrRatio(), 5.0);
    EXPECT_DOUBLE_EQ(stats.wr2Ratio(), 25.0);
}

TEST(PageStats, PaperWr2Example)
{
    // Section 5.4.2: p1 is 4:1, p2 is 400:200. Wr ratio prefers p1,
    // Wr^2 ratio prefers p2.
    PageStats p1{1, 4, 0.0};
    PageStats p2{200, 400, 0.0};
    EXPECT_GT(p1.wrRatio(), p2.wrRatio());
    EXPECT_GT(p2.wr2Ratio(), p1.wr2Ratio());
}

TEST(PageProfile, RecordsAccesses)
{
    PageProfile profile;
    profile.recordAccess(1, false);
    profile.recordAccess(1, false);
    profile.recordAccess(1, true);
    profile.recordAccess(2, true);
    EXPECT_EQ(profile.statsOf(1).reads, 2u);
    EXPECT_EQ(profile.statsOf(1).writes, 1u);
    EXPECT_EQ(profile.statsOf(2).writes, 1u);
    EXPECT_EQ(profile.statsOf(3).hotness(), 0u);
    EXPECT_EQ(profile.footprintPages(), 2u);
}

TEST(PageProfile, SetAvf)
{
    PageProfile profile;
    profile.recordAccess(1, false);
    profile.setAvf(1, 0.42);
    EXPECT_DOUBLE_EQ(profile.statsOf(1).avf, 0.42);
}

TEST(PageProfile, Means)
{
    PageProfile profile;
    profile.recordAccess(1, false); // hotness 1
    profile.recordAccess(2, false);
    profile.recordAccess(2, false);
    profile.recordAccess(2, false); // hotness 3
    profile.setAvf(1, 0.2);
    profile.setAvf(2, 0.6);
    EXPECT_DOUBLE_EQ(profile.meanHotness(), 2.0);
    EXPECT_DOUBLE_EQ(profile.meanAvf(), 0.4);
}

TEST(PageProfile, SortedByDescendingWithTieBreak)
{
    PageProfile profile;
    profile.recordAccess(5, false);
    profile.recordAccess(3, false);
    profile.recordAccess(3, false);
    profile.recordAccess(9, false); // ties with 5
    const auto order = profile.sortedByDescending(
        [](const PageStats &s) { return s.hotness(); });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0].first, 3u);
    EXPECT_EQ(order[1].first, 5u); // lower id wins the tie
    EXPECT_EQ(order[2].first, 9u);
}

TEST(Quadrants, ClassifiesAroundMeans)
{
    PageProfile profile;
    // hotness: 10, 10, 1, 1 (mean 5.5); avf: .9, .1, .9, .1 (mean .5)
    for (int i = 0; i < 10; ++i) {
        profile.recordAccess(0, false);
        profile.recordAccess(1, false);
    }
    profile.recordAccess(2, false);
    profile.recordAccess(3, false);
    profile.setAvf(0, 0.9);
    profile.setAvf(1, 0.1);
    profile.setAvf(2, 0.9);
    profile.setAvf(3, 0.1);

    const auto counts = analyzeQuadrants(profile);
    EXPECT_EQ(counts.hotHighRisk, 1u);
    EXPECT_EQ(counts.hotLowRisk, 1u);
    EXPECT_EQ(counts.coldHighRisk, 1u);
    EXPECT_EQ(counts.coldLowRisk, 1u);
    EXPECT_EQ(counts.total(), 4u);
    EXPECT_DOUBLE_EQ(counts.hotLowRiskFraction(), 0.25);
    EXPECT_DOUBLE_EQ(counts.hotnessThreshold, 5.5);
    EXPECT_DOUBLE_EQ(counts.avfThreshold, 0.5);
}

TEST(Quadrants, EmptyProfile)
{
    const auto counts = analyzeQuadrants(PageProfile{});
    EXPECT_EQ(counts.total(), 0u);
    EXPECT_EQ(counts.hotLowRiskFraction(), 0.0);
}

} // namespace
} // namespace ramp
