/**
 * @file
 * Tests for the synthetic trace generator (src/trace/generator).
 */

#include <gtest/gtest.h>

#include <unordered_set>

#include "trace/generator.hh"
#include "trace/trace.hh"

namespace ramp
{
namespace
{

GeneratorOptions
smallOptions(std::uint64_t seed = 1)
{
    GeneratorOptions options;
    options.seed = seed;
    options.traceScale = 0.02;
    return options;
}

TEST(Generator, DeterministicForSameSeed)
{
    const auto spec = homogeneousWorkload("mcf");
    const auto a = generateTraces(spec, smallOptions(5));
    const auto b = generateTraces(spec, smallOptions(5));
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t core = 0; core < a.size(); ++core) {
        ASSERT_EQ(a[core].size(), b[core].size());
        for (std::size_t i = 0; i < a[core].size(); ++i) {
            EXPECT_EQ(a[core][i].addr, b[core][i].addr);
            EXPECT_EQ(a[core][i].isWrite, b[core][i].isWrite);
            EXPECT_EQ(a[core][i].gap, b[core][i].gap);
        }
    }
}

TEST(Generator, DifferentSeedsProduceDifferentTraces)
{
    const auto spec = homogeneousWorkload("mcf");
    const auto a = generateTraces(spec, smallOptions(5));
    const auto b = generateTraces(spec, smallOptions(6));
    bool different = false;
    for (std::size_t i = 0; i < a[0].size() && !different; ++i)
        different = a[0][i].addr != b[0][i].addr;
    EXPECT_TRUE(different);
}

TEST(Generator, SixteenCoreTraces)
{
    const auto traces =
        generateTraces(homogeneousWorkload("lbm"), smallOptions());
    EXPECT_EQ(traces.size(),
              static_cast<std::size_t>(workloadCores));
    for (const auto &trace : traces)
        EXPECT_FALSE(trace.empty());
}

TEST(Generator, RequestCountMatchesScaledProfile)
{
    const auto &profile = benchmarkProfile("milc");
    GeneratorOptions options;
    options.traceScale = 0.01;
    const auto traces =
        generateTraces(homogeneousWorkload("milc"), options);
    const auto expected = static_cast<std::uint64_t>(
        profile.requestsPerCore * 0.01);
    for (const auto &trace : traces)
        EXPECT_EQ(trace.size(), expected);
}

TEST(Generator, AddressesStayInsideOwnersRanges)
{
    const auto spec = mixWorkload("mix3");
    const auto layout = buildLayout(spec);
    const auto traces = generateTraces(spec, layout, smallOptions());
    for (std::size_t core = 0; core < traces.size(); ++core) {
        for (const auto &req : traces[core]) {
            EXPECT_EQ(req.core, core);
            const int idx = layout.rangeOf(pageOf(req.addr));
            ASSERT_GE(idx, 0) << "address outside layout";
            EXPECT_EQ(layout.ranges[static_cast<std::size_t>(idx)]
                          .core,
                      core)
                << "core touched another core's pages";
        }
    }
}

TEST(Generator, MpkiApproximatesProfile)
{
    GeneratorOptions options;
    options.traceScale = 0.2;
    const auto &profile = benchmarkProfile("xsbench");
    const auto traces =
        generateTraces(homogeneousWorkload("xsbench"), options);
    const auto stats = computeStats(traces);
    EXPECT_NEAR(stats.mpki(), profile.mpki, profile.mpki * 0.1);
}

TEST(Generator, WriteFractionTracksStructureMix)
{
    // milc is read-dominated overall; its trace write fraction must
    // sit well below one half but above zero.
    GeneratorOptions options;
    options.traceScale = 0.1;
    const auto traces =
        generateTraces(homogeneousWorkload("milc"), options);
    const auto stats = computeStats(traces);
    EXPECT_GT(stats.writeFraction(), 0.1);
    EXPECT_LT(stats.writeFraction(), 0.55);
}

TEST(Generator, StreamingCoversStructureUniformly)
{
    // libquantum's state vector is streamed; page touch counts
    // should be near-uniform across the structure.
    GeneratorOptions options;
    options.traceScale = 0.3;
    const auto spec = homogeneousWorkload("libquantum");
    const auto layout = buildLayout(spec);
    const auto traces = generateTraces(spec, layout, options);

    // Count per-page accesses of core 0's state_vec range.
    const StructureRange *range = nullptr;
    for (const auto &candidate : layout.ranges)
        if (candidate.core == 0 &&
            candidate.structure == "state_vec")
            range = &candidate;
    ASSERT_NE(range, nullptr);

    std::vector<std::uint64_t> counts(range->pages, 0);
    for (const auto &req : traces[0]) {
        const PageId page = pageOf(req.addr);
        if (page >= range->firstPage && page < range->endPage())
            ++counts[page - range->firstPage];
    }
    std::uint64_t min_count = UINT64_MAX, max_count = 0;
    for (const auto count : counts) {
        min_count = std::min(min_count, count);
        max_count = std::max(max_count, count);
    }
    EXPECT_GT(min_count, 0u);
    EXPECT_LT(max_count, 4 * std::max<std::uint64_t>(min_count, 1));
}

TEST(Generator, CpuLevelModeIsDenser)
{
    const auto spec = homogeneousWorkload("gcc");
    auto options = smallOptions();
    const auto mem_level = generateTraces(spec, options);
    options.cpuLevel = true;
    options.hitBurst = 3;
    const auto cpu_level = generateTraces(spec, options);
    EXPECT_EQ(cpu_level[0].size(), 4 * mem_level[0].size());
}

TEST(Generator, CpuLevelPreservesInstructionBudgetApproximately)
{
    const auto spec = homogeneousWorkload("gcc");
    auto options = smallOptions();
    const auto mem_stats = computeStats(generateTraces(spec, options));
    options.cpuLevel = true;
    const auto cpu_stats = computeStats(generateTraces(spec, options));
    // Gap splitting truncates; allow a third of slack.
    EXPECT_GT(cpu_stats.instructions,
              mem_stats.instructions * 2 / 3);
    EXPECT_LE(cpu_stats.instructions,
              mem_stats.instructions + cpu_stats.requests);
}

/** Property sweep over every registered program. */
class GeneratorPropertyTest
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(GeneratorPropertyTest, TracesAreWellFormed)
{
    const auto spec = homogeneousWorkload(GetParam());
    const auto layout = buildLayout(spec);
    const auto traces = generateTraces(spec, layout, smallOptions());
    const auto stats = computeStats(traces);
    EXPECT_GT(stats.requests, 0u);
    EXPECT_GT(stats.reads, 0u);
    EXPECT_GT(stats.writes, 0u);
    EXPECT_LE(stats.footprintPages, layout.totalPages);
    EXPECT_GT(stats.instructions, stats.requests);
}

INSTANTIATE_TEST_SUITE_P(
    AllPrograms, GeneratorPropertyTest,
    ::testing::Values("mcf", "lbm", "milc", "astar", "soplex",
                      "libquantum", "cactusADM", "xsbench", "lulesh",
                      "omnetpp", "sphinx", "dealII", "leslie3d",
                      "gcc", "GemsFDTD", "bzip", "bwaves"));

} // namespace
} // namespace ramp
