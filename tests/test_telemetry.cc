/**
 * @file
 * Unit tests for the telemetry subsystem (src/telemetry): sharded
 * counter exactness under threads, fixed-bucket histogram
 * semantics, snapshot determinism under the pool, and trace-event
 * JSON well-formedness.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <limits>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "reliability/faultsim.hh"
#include "runner/pool.hh"
#include "telemetry/telemetry.hh"

namespace ramp::telemetry
{
namespace
{

/** Fresh telemetry state (enabled) for each test body. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        resetAll();
        setEnabled(true);
    }

    void TearDown() override
    {
        setEnabled(false);
        resetAll();
    }
};

TEST_F(TelemetryTest, ConcurrentCounterIncrementsSumExactly)
{
    Counter &counter = metrics().counter("test.concurrent");
    constexpr int threads = 8;
    constexpr std::uint64_t perThread = 10000;

    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&counter] {
            for (std::uint64_t i = 0; i < perThread; ++i)
                counter.add(1);
        });
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(counter.total(), threads * perThread);
}

TEST_F(TelemetryTest, CounterAddHonoursWeight)
{
    Counter &counter = metrics().counter("test.weighted");
    counter.add(3);
    counter.add(4);
    EXPECT_EQ(counter.total(), 7u);
    counter.reset();
    EXPECT_EQ(counter.total(), 0u);
}

TEST(FixedHistogram, BucketBoundaries)
{
    auto hist = FixedHistogram::linear(0.0, 10.0, 5);
    ASSERT_EQ(hist.numBuckets(), 5u);
    // Buckets are [lo, hi): a value on an interior edge lands in
    // the bucket it opens.
    EXPECT_EQ(hist.bucketOf(0.0), 0u);
    EXPECT_EQ(hist.bucketOf(1.99), 0u);
    EXPECT_EQ(hist.bucketOf(2.0), 1u);
    EXPECT_EQ(hist.bucketOf(9.99), 4u);
    EXPECT_DOUBLE_EQ(hist.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(hist.bucketHigh(0), 2.0);
    EXPECT_DOUBLE_EQ(hist.bucketLow(4), 8.0);
    EXPECT_DOUBLE_EQ(hist.bucketHigh(4), 10.0);
}

TEST(FixedHistogram, ClampsOutOfRange)
{
    auto hist = FixedHistogram::linear(0.0, 10.0, 5);
    hist.add(-100.0);
    hist.add(100.0);
    hist.add(10.0); // the exclusive upper edge clamps down too
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(4), 2u);
    EXPECT_EQ(hist.total(), 3u);
}

TEST(FixedHistogram, ExplicitEdgesAndCounts)
{
    FixedHistogram hist({0.0, 1.0, 10.0, 100.0});
    hist.add(0.5);
    hist.add(5.0, 3);
    hist.add(50.0);
    EXPECT_EQ(hist.bucketCount(0), 1u);
    EXPECT_EQ(hist.bucketCount(1), 3u);
    EXPECT_EQ(hist.bucketCount(2), 1u);
    EXPECT_EQ(hist.total(), 5u);
}

TEST(FixedHistogram, PercentilesInterpolateWithinBuckets)
{
    auto hist = FixedHistogram::linear(0.0, 100.0, 10);
    // A uniform series: quantiles track the identity line.
    for (int i = 0; i < 100; ++i)
        hist.add(i + 0.5);
    EXPECT_NEAR(hist.percentile(0.0), 0.0, 1.0);
    EXPECT_NEAR(hist.p50(), 50.0, 1.0);
    EXPECT_NEAR(hist.p95(), 95.0, 1.0);
    EXPECT_NEAR(hist.p99(), 99.0, 1.0);
    EXPECT_NEAR(hist.percentile(1.0), 100.0, 1.0);
    // Out-of-range quantiles clamp instead of extrapolating.
    EXPECT_DOUBLE_EQ(hist.percentile(-1.0), hist.percentile(0.0));
    EXPECT_DOUBLE_EQ(hist.percentile(2.0), hist.percentile(1.0));
}

TEST(FixedHistogram, PercentileOfSkewedMassLandsInItsBucket)
{
    auto hist = FixedHistogram::linear(0.0, 10.0, 10);
    hist.add(0.5, 99);
    hist.add(9.5, 1);
    // 99% of the mass sits in [0, 1): the median must too, and only
    // the extreme tail reaches the last bucket.
    EXPECT_LT(hist.p50(), 1.0);
    EXPECT_LT(hist.p95(), 1.0);
    EXPECT_GE(hist.percentile(0.995), 9.0);
}

TEST(FixedHistogram, PercentileOfEmptyHistogramIsNaN)
{
    const auto hist = FixedHistogram::linear(0.0, 1.0, 4);
    EXPECT_TRUE(std::isnan(hist.p50()));
    EXPECT_TRUE(std::isnan(hist.percentile(1.0)));
}

TEST(FixedHistogram, MergeAddsCountsOfSameLayout)
{
    auto a = FixedHistogram::linear(0.0, 1.0, 4);
    auto b = FixedHistogram::linear(0.0, 1.0, 4);
    a.add(0.1);
    b.add(0.1);
    b.add(0.9, 2);
    a.merge(b);
    EXPECT_EQ(a.bucketCount(0), 2u);
    EXPECT_EQ(a.bucketCount(3), 2u);
    EXPECT_EQ(a.total(), 4u);
}

TEST(FixedHistogramDeath, MergeRejectsLayoutMismatch)
{
    auto a = FixedHistogram::linear(0.0, 1.0, 4);
    auto b = FixedHistogram::linear(0.0, 2.0, 4);
    EXPECT_FALSE(a.sameLayout(b));
    EXPECT_DEATH(a.merge(b), "layout");
}

TEST_F(TelemetryTest, HistogramMetricObservesAcrossThreads)
{
    auto &metric = metrics().histogram(
        "test.hist", FixedHistogram::linear(0.0, 4.0, 4));
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
        workers.emplace_back([&metric, t] {
            for (int i = 0; i < 100; ++i)
                metric.observe(static_cast<double>(t) + 0.5);
        });
    for (auto &worker : workers)
        worker.join();

    const auto snap = metric.snapshot();
    for (std::size_t bucket = 0; bucket < 4; ++bucket)
        EXPECT_EQ(snap.bucketCount(bucket), 100u);
    EXPECT_EQ(snap.total(), 400u);
}

TEST_F(TelemetryTest, SnapshotIsDeterministicUnderThePool)
{
    // The same work fanned out over differently-sized pools must
    // merge to identical totals: every mutation is an unconditional
    // sharded add, so scheduling cannot change the sums.
    auto run = [](unsigned jobs) {
        metrics().resetValues();
        Counter &items = metrics().counter("test.pool.items");
        auto &weights = metrics().histogram(
            "test.pool.weights",
            FixedHistogram::linear(0.0, 64.0, 8));
        runner::ThreadPool pool(jobs);
        pool.runIndexed(64, [&](std::size_t i) {
            items.add(i);
            weights.observe(static_cast<double>(i));
        });
        const auto snap = metrics().snapshot();
        std::pair<std::uint64_t, std::vector<std::uint64_t>> out;
        out.first = snap.counterOr("test.pool.items");
        out.second =
            snap.histograms.at("test.pool.weights").counts();
        return out;
    };

    const auto serial = run(1);
    const auto parallel = run(4);
    EXPECT_EQ(serial.first, 64u * 63u / 2u);
    EXPECT_EQ(serial, parallel);
}

TEST_F(TelemetryTest, DisabledSitesRecordNothing)
{
    setEnabled(false);
    Counter &counter = metrics().counter("test.disabled");
    RAMP_TELEM(counter.add(1));
    {
        RAMP_TELEM_SPAN(span, "test.span", "test");
    }
    instant("test.instant", "test");
    EXPECT_EQ(counter.total(), 0u);
    EXPECT_TRUE(collectEvents().empty());
}

TEST_F(TelemetryTest, SnapshotJsonHasAllSections)
{
    metrics().counter("test.json.counter").add(2);
    metrics().gauge("test.json.gauge").set(1.5);
    metrics()
        .histogram("test.json.hist",
                   FixedHistogram::linear(0.0, 1.0, 2))
        .observe(0.25);
    const std::string json = metrics().snapshot().toJson();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"gauges\""), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"test.json.counter\": 2"),
              std::string::npos);
}

/**
 * Minimal JSON well-formedness scanner: validates balanced
 * braces/brackets outside strings and legal escape sequences. Not a
 * full parser, but enough to catch the classic emitter bugs
 * (trailing commas are additionally checked below).
 */
bool
jsonBalanced(const std::string &text)
{
    std::vector<char> stack;
    bool in_string = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        if (in_string) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_string = false;
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': stack.push_back('}'); break;
          case '[': stack.push_back(']'); break;
          case '}':
          case ']':
            if (stack.empty() || stack.back() != c)
                return false;
            stack.pop_back();
            break;
          default: break;
        }
    }
    return stack.empty() && !in_string;
}

TEST_F(TelemetryTest, TraceJsonIsWellFormedWithNestedSpans)
{
    {
        RAMP_TELEM_SPAN(outer, "outer", "test",
                        traceArg("key", "value \"quoted\"\n"));
        {
            RAMP_TELEM_SPAN(inner, "inner", "test");
        }
        instant("marker", "test");
    }

    const std::string json = traceJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_EQ(json.find(",]"), std::string::npos);
    EXPECT_EQ(json.find(",}"), std::string::npos);

    // Spans are well-nested per thread by construction: walking
    // this thread's events, every E closes the latest open B.
    std::vector<std::string> open;
    for (const auto &event : collectEvents()) {
        if (event.phase == 'B') {
            open.push_back(event.name);
        } else if (event.phase == 'E') {
            ASSERT_FALSE(open.empty());
            open.pop_back();
        }
    }
    EXPECT_TRUE(open.empty());
}

TEST_F(TelemetryTest, SpanOrderIsBeginInnerEnd)
{
    {
        RAMP_TELEM_SPAN(outer, "outer", "test");
        RAMP_TELEM_SPAN(inner, "inner", "test");
    }
    const auto events = collectEvents();
    ASSERT_EQ(events.size(), 4u);
    EXPECT_EQ(events[0].name, "outer");
    EXPECT_EQ(events[0].phase, 'B');
    EXPECT_EQ(events[1].name, "inner");
    EXPECT_EQ(events[1].phase, 'B');
    // Destruction order is inverse construction order.
    EXPECT_EQ(events[2].name, "inner");
    EXPECT_EQ(events[2].phase, 'E');
    EXPECT_EQ(events[3].name, "outer");
    EXPECT_EQ(events[3].phase, 'E');
    EXPECT_LE(events[0].tsMicros, events[3].tsMicros);
}

TEST_F(TelemetryTest, FaultSimShardsEmitSpansAndCounters)
{
    FaultSim sim(FaultSimConfig::hbmSecDed());
    sim.run(2000, 42);

    const auto snap = metrics().snapshot();
    EXPECT_EQ(snap.counterOr("faultsim.trials"), 2000u);
    EXPECT_GE(snap.counterOr("faultsim.shards"), 1u);

    bool campaign_span = false, shard_span = false;
    for (const auto &event : collectEvents()) {
        if (event.phase != 'B')
            continue;
        campaign_span |= event.name == "faultsim.campaign";
        shard_span |= event.name == "faultsim.shard";
    }
    EXPECT_TRUE(campaign_span);
    EXPECT_TRUE(shard_span);
}

TEST_F(TelemetryTest, LogCaptureEmitsInstantEvents)
{
    captureLogEvents();
    ramp_warn("telemetry capture probe");

    bool saw = false;
    for (const auto &event : collectEvents())
        if (event.phase == 'i' && event.cat == "log" &&
            event.argsJson.find("telemetry capture probe") !=
                std::string::npos)
            saw = true;
    EXPECT_TRUE(saw);
}

TEST_F(TelemetryTest, SnapshotQuantileAccessorMatchesHistogram)
{
    auto &metric = metrics().histogram(
        "test.quantiles", FixedHistogram::linear(0.0, 10.0, 10));
    for (int i = 0; i < 100; ++i)
        metric.observe((i % 10) + 0.5);
    const auto snap = metrics().snapshot();
    EXPECT_NEAR(snap.histogramPercentile("test.quantiles", 0.5),
                5.0, 0.5);
    // Unknown names and empty histograms answer NaN, not zero.
    EXPECT_TRUE(
        std::isnan(snap.histogramPercentile("no.such.hist", 0.5)));
}

TEST(JsonNumber, NonFiniteValuesRenderAsNull)
{
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()),
              "null");
    EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()),
              "null");
    EXPECT_EQ(jsonNumber(-std::numeric_limits<double>::infinity()),
              "null");
}

TEST_F(TelemetryTest, CounterEventsAppearAsCounterPhase)
{
    counterEvent("proc.rss", "resource", "mb", 123.5);
    bool saw = false;
    for (const auto &event : collectEvents()) {
        if (event.phase != 'C' || event.name != "proc.rss")
            continue;
        saw = true;
        EXPECT_EQ(event.cat, "resource");
        EXPECT_NE(event.argsJson.find("\"mb\""),
                  std::string::npos);
        EXPECT_NE(event.argsJson.find("123.5"), std::string::npos);
    }
    EXPECT_TRUE(saw);

    const std::string json = traceJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
}

TEST(TelemetryRegistryDeath, HistogramRelayoutPanics)
{
    metrics().histogram("test.relayout",
                        FixedHistogram::linear(0.0, 1.0, 2));
    EXPECT_DEATH(metrics().histogram(
                     "test.relayout",
                     FixedHistogram::linear(0.0, 2.0, 2)),
                 "layout");
}

} // namespace
} // namespace ramp::telemetry
