/**
 * @file
 * Tests for the fault-tolerance layer (src/runner): crash-safe
 * atomic writes, the checksummed checkpoint journal (bit-exact
 * round trips, corruption containment, header quarantine), cache
 * entry quarantine, and kill-and-resume campaigns whose resumed
 * JSON report is byte-identical to an uninterrupted run.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runner/harness.hh"

namespace ramp
{
namespace
{

namespace fs = std::filesystem;

using runner::atomicWriteFile;
using runner::CheckpointJournal;
using runner::fnv1a64;
using runner::Harness;
using runner::hashHex;
using runner::PassDesc;
using runner::PassStatus;
using runner::ProfileCache;
using runner::RunnerOptions;
using runner::uniqueTmpPath;

GeneratorOptions
smallTraces()
{
    GeneratorOptions options;
    options.traceScale = 0.02;
    return options;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Scratch directory wiped at construction (stale runs must not hit). */
std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    fs::remove_all(dir);
    return dir;
}

/** A result exercising every codec field with hostile doubles. */
SimResult
nastyResult()
{
    SimResult result;
    result.label = "perf-focused@0.5 \"quoted\"\n";
    result.makespan = 123456789;
    result.instructions = UINT64_C(0xffffffffffffffff);
    result.requests = 42;
    result.reads = 30;
    result.writes = 12;
    result.ipc = 0.1 + 0.2; // famously not 0.3
    result.mpki = 5e-324;   // smallest denormal
    result.avgReadLatency = 1.0 / 3.0;
    result.hbmAccessFraction = std::nextafter(1.0, 0.0);
    result.hbmStats.reads = 7;
    result.hbmStats.writes = 3;
    result.hbmStats.rowHits = 5;
    result.hbmStats.rowMisses = 2;
    result.hbmStats.busBusyCycles = 99;
    result.hbmStats.totalReadLatency = 1234;
    result.ddrStats.reads = 23;
    result.ddrStats.totalReadLatency = 4321;
    result.migratedPages = 17;
    result.migrationEvents = 4;
    result.memoryAvf = 1e-300;
    result.ser = 2.5066282746310002; // irrational-ish tail
    return result;
}

std::uint64_t
bits(double value)
{
    std::uint64_t out;
    std::memcpy(&out, &value, sizeof(out));
    return out;
}

void
expectBitExact(const SimResult &a, const SimResult &b)
{
    EXPECT_EQ(a.label, b.label);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.reads, b.reads);
    EXPECT_EQ(a.writes, b.writes);
    EXPECT_EQ(bits(a.ipc), bits(b.ipc));
    EXPECT_EQ(bits(a.mpki), bits(b.mpki));
    EXPECT_EQ(bits(a.avgReadLatency), bits(b.avgReadLatency));
    EXPECT_EQ(bits(a.hbmAccessFraction),
              bits(b.hbmAccessFraction));
    EXPECT_EQ(a.hbmStats.reads, b.hbmStats.reads);
    EXPECT_EQ(a.hbmStats.writes, b.hbmStats.writes);
    EXPECT_EQ(a.hbmStats.rowHits, b.hbmStats.rowHits);
    EXPECT_EQ(a.hbmStats.rowMisses, b.hbmStats.rowMisses);
    EXPECT_EQ(a.hbmStats.busBusyCycles, b.hbmStats.busBusyCycles);
    EXPECT_EQ(a.hbmStats.totalReadLatency,
              b.hbmStats.totalReadLatency);
    EXPECT_EQ(a.ddrStats.reads, b.ddrStats.reads);
    EXPECT_EQ(a.ddrStats.totalReadLatency,
              b.ddrStats.totalReadLatency);
    EXPECT_EQ(a.migratedPages, b.migratedPages);
    EXPECT_EQ(a.migrationEvents, b.migrationEvents);
    EXPECT_EQ(bits(a.memoryAvf), bits(b.memoryAvf));
    EXPECT_EQ(bits(a.ser), bits(b.ser));
}

TEST(Checksum, Fnv1aMatchesReferenceVectors)
{
    // Published FNV-1a 64-bit test vectors.
    EXPECT_EQ(fnv1a64(""), UINT64_C(0xcbf29ce484222325));
    EXPECT_EQ(fnv1a64("a"), UINT64_C(0xaf63dc4c8601ec8c));
    EXPECT_EQ(fnv1a64("foobar"), UINT64_C(0x85944171f73967e8));
    EXPECT_EQ(hashHex(UINT64_C(0xcbf29ce484222325)),
              "cbf29ce484222325");
    EXPECT_EQ(hashHex(0).size(), 16u);
}

TEST(AtomicWrite, UniqueTmpPathsNeverCollide)
{
    const std::string a = uniqueTmpPath("/tmp/x/target");
    const std::string b = uniqueTmpPath("/tmp/x/target");
    EXPECT_NE(a, b);
    EXPECT_EQ(a.rfind("/tmp/x/", 0), 0u);
}

TEST(AtomicWrite, CreatesParentsAndLeavesNoTemps)
{
    const std::string dir = freshDir("ramp_atomic_write");
    const std::string path = dir + "/nested/deeper/out.json";
    ASSERT_TRUE(atomicWriteFile(path, "first"));
    EXPECT_EQ(slurp(path), "first");
    ASSERT_TRUE(atomicWriteFile(path, "second overwrite"));
    EXPECT_EQ(slurp(path), "second overwrite");
    // Only the target survives: temp files never linger.
    std::size_t entries = 0;
    for (const auto &entry :
         fs::directory_iterator(dir + "/nested/deeper")) {
        (void)entry;
        ++entries;
    }
    EXPECT_EQ(entries, 1u);
    fs::remove_all(dir);
}

TEST(JournalCodec, LineRoundTripsBitExactly)
{
    const SimResult result = nastyResult();
    const std::string line =
        CheckpointJournal::encodeLine("key-1", "astar", result);
    // One line, no raw control characters.
    EXPECT_EQ(line.find('\n'), std::string::npos);

    std::string key, workload;
    SimResult restored;
    ASSERT_TRUE(CheckpointJournal::decodeLine(line, key, workload,
                                              restored));
    EXPECT_EQ(key, "key-1");
    EXPECT_EQ(workload, "astar");
    expectBitExact(restored, result);
}

TEST(JournalCodec, RejectsTamperedLines)
{
    const std::string line = CheckpointJournal::encodeLine(
        "key-1", "astar", nastyResult());
    std::string key, workload;
    SimResult restored;

    // Flip one payload character.
    std::string flipped = line;
    const auto pos = flipped.find("\"result\":\"") + 11;
    flipped[pos] = flipped[pos] == '0' ? '1' : '0';
    EXPECT_FALSE(CheckpointJournal::decodeLine(flipped, key,
                                               workload, restored));

    // Truncate (a torn write).
    EXPECT_FALSE(CheckpointJournal::decodeLine(
        line.substr(0, line.size() / 2), key, workload, restored));

    // Garbage.
    EXPECT_FALSE(CheckpointJournal::decodeLine(
        "not json at all", key, workload, restored));
    EXPECT_FALSE(
        CheckpointJournal::decodeLine("", key, workload, restored));
}

TEST(Journal, PersistsAndResumesAcrossInstances)
{
    const std::string dir = freshDir("ramp_journal_resume");
    const SimResult result = nastyResult();
    {
        CheckpointJournal journal(dir, "tool_a");
        journal.append("pass-1", "astar", result);
        journal.append("pass-2", "mcf", result);
        // Duplicate appends are dropped.
        journal.append("pass-1", "astar", result);
        EXPECT_EQ(journal.stats().appended, 2u);
    }
    CheckpointJournal resumed(dir, "tool_a");
    EXPECT_EQ(resumed.stats().loaded, 2u);
    EXPECT_EQ(resumed.stats().corruptLines, 0u);

    std::string workload;
    SimResult restored;
    ASSERT_TRUE(resumed.lookup("pass-1", workload, restored));
    EXPECT_EQ(workload, "astar");
    expectBitExact(restored, result);
    EXPECT_FALSE(resumed.lookup("pass-3", workload, restored));
    EXPECT_EQ(resumed.stats().hits, 1u);
    fs::remove_all(dir);
}

TEST(Journal, CorruptLinesAreSkippedNotFatal)
{
    const std::string dir = freshDir("ramp_journal_corrupt");
    std::string path;
    {
        CheckpointJournal journal(dir, "tool_b");
        path = journal.path();
        journal.append("pass-1", "astar", nastyResult());
        journal.append("pass-2", "mcf", nastyResult());
    }
    // Simulate a torn final write plus a bit-flip mid-file.
    std::string contents = slurp(path);
    const auto first_line_start = contents.find('\n') + 1;
    contents[first_line_start + 20] ^= 0x4; // corrupt pass-1's line
    contents += "{\"key\":\"torn";          // torn trailing line
    {
        std::ofstream out(path, std::ios::trunc | std::ios::binary);
        out << contents;
    }

    CheckpointJournal resumed(dir, "tool_b");
    EXPECT_EQ(resumed.stats().loaded, 1u);
    EXPECT_EQ(resumed.stats().corruptLines, 2u);
    std::string workload;
    SimResult restored;
    EXPECT_FALSE(resumed.lookup("pass-1", workload, restored));
    EXPECT_TRUE(resumed.lookup("pass-2", workload, restored));
    fs::remove_all(dir);
}

TEST(Journal, UnreadableHeaderIsQuarantined)
{
    const std::string dir = freshDir("ramp_journal_header");
    fs::create_directories(dir);
    const std::string path = dir + "/tool_c.ckpt.jsonl";
    {
        std::ofstream out(path, std::ios::binary);
        out << "this is not a ramp journal\n";
    }
    CheckpointJournal journal(dir, "tool_c");
    EXPECT_EQ(journal.stats().loaded, 0u);
    EXPECT_TRUE(fs::exists(path + ".corrupt"));
    // The fresh journal is usable.
    journal.append("pass-1", "astar", nastyResult());
    CheckpointJournal resumed(dir, "tool_c");
    EXPECT_EQ(resumed.stats().loaded, 1u);
    fs::remove_all(dir);
}

TEST(ProfileCache, CorruptDiskEntryQuarantinedAndRecomputed)
{
    const SystemConfig config = SystemConfig::scaledDefault();
    const std::string dir = freshDir("ramp_cache_quarantine");
    const auto spec = homogeneousWorkload("astar");

    ProfileCache writer;
    writer.setDiskDir(dir);
    const auto computed = writer.get(config, spec, smallTraces());
    ASSERT_EQ(writer.stats().diskWrites, 1u);

    // Flip bytes in the middle of the cache entry.
    std::string entry_path;
    for (const auto &entry : fs::directory_iterator(dir))
        if (entry.path().extension() == ".profile")
            entry_path = entry.path().string();
    ASSERT_FALSE(entry_path.empty());
    std::string bytes = slurp(entry_path);
    ASSERT_GT(bytes.size(), 64u);
    for (std::size_t i = bytes.size() / 2;
         i < bytes.size() / 2 + 8; ++i)
        bytes[i] = static_cast<char>(bytes[i] ^ 0xff);
    {
        std::ofstream out(entry_path,
                          std::ios::trunc | std::ios::binary);
        out << bytes;
    }

    ProfileCache reader;
    reader.setDiskDir(dir);
    testing::internal::CaptureStderr();
    const auto recomputed = reader.get(config, spec, smallTraces());
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(reader.stats().quarantined, 1u);
    EXPECT_EQ(reader.stats().diskHits, 0u);
    EXPECT_EQ(reader.stats().misses, 1u);
    EXPECT_TRUE(fs::exists(entry_path + ".corrupt"));
    // The recomputed profile matches the original computation.
    EXPECT_EQ(recomputed->profile().footprintPages(),
              computed->profile().footprintPages());
    EXPECT_DOUBLE_EQ(recomputed->base.ipc, computed->base.ipc);
    fs::remove_all(dir);
}

/**
 * The acceptance scenario: a campaign killed mid-run and resumed
 * from its checkpoint journal must emit a JSON report
 * byte-identical to an uninterrupted run.
 */
TEST(Journal, ResumedCampaignJsonIsByteIdentical)
{
    const std::string ckpt = freshDir("ramp_resume_ckpt");
    const std::string json_resumed =
        ::testing::TempDir() + "ramp_resume_b.json";
    const std::string json_reference =
        ::testing::TempDir() + "ramp_resume_c.json";
    std::remove(json_resumed.c_str());
    std::remove(json_reference.c_str());

    const std::vector<const char *> labels = {"perf", "balanced",
                                              "wr2"};
    const std::vector<StaticPolicy> policies = {
        StaticPolicy::PerfFocused, StaticPolicy::Balanced,
        StaticPolicy::Wr2Ratio};

    const auto run = [&](const RunnerOptions &options,
                         bool fail_mid) {
        Harness harness("resume_tool", options);
        const auto wl = harness.profile(homogeneousWorkload("astar"),
                                        smallTraces());
        std::vector<PassDesc> descs;
        for (const char *label : labels)
            descs.push_back(
                {wl->name(), Harness::passKey(wl, label)});
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                if (fail_mid && i == 1)
                    throw std::runtime_error(
                        "simulated mid-campaign crash");
                return runStaticPolicy(harness.config(), wl->data,
                                       policies[i], wl->profile());
            });
        testing::internal::CaptureStderr();
        const int code = harness.finish();
        testing::internal::GetCapturedStderr();
        return std::make_pair(outcomes, code);
    };

    // 1. "Killed" campaign: pass 1 dies, 0 and 2 are journaled.
    RunnerOptions interrupted;
    interrupted.jobs = 2;
    interrupted.checkpointDir = ckpt;
    EXPECT_EQ(run(interrupted, /*fail_mid=*/true).second, 3);

    // 2. Resume: journaled passes replay, the missing one runs.
    RunnerOptions resumed;
    resumed.jobs = 1;
    resumed.checkpointDir = ckpt;
    resumed.jsonPath = json_resumed;
    const auto [outcomes, code] = run(resumed, /*fail_mid=*/false);
    EXPECT_EQ(code, 0);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_TRUE(outcomes[0].fromCheckpoint);
    EXPECT_FALSE(outcomes[1].fromCheckpoint);
    EXPECT_TRUE(outcomes[2].fromCheckpoint);
    for (const auto &outcome : outcomes)
        EXPECT_EQ(outcome.status, PassStatus::Ok);

    // 3. Uninterrupted reference run, no checkpointing at all.
    RunnerOptions reference;
    reference.jobs = 1;
    reference.jsonPath = json_reference;
    EXPECT_EQ(run(reference, /*fail_mid=*/false).second, 0);

    const std::string resumed_json = slurp(json_resumed);
    ASSERT_FALSE(resumed_json.empty());
    EXPECT_EQ(resumed_json, slurp(json_reference));

    std::remove(json_resumed.c_str());
    std::remove(json_reference.c_str());
    fs::remove_all(ckpt);
}

/**
 * A campaign that hits --pass-timeout leaves its output artifacts
 * behind the moment the timeout is noticed — like the SIGINT path —
 * so an operator who kills the run next still has the partial
 * report. finish() then atomically replaces the early flush with
 * the complete campaign.
 */
TEST(Harness, TimeoutFlushesOutputsEarly)
{
    const std::string json =
        ::testing::TempDir() + "ramp_timeout_flush.json";
    const std::string bench =
        ::testing::TempDir() + "BENCH_timeout_flush.json";
    std::remove(json.c_str());
    std::remove(bench.c_str());

    RunnerOptions options;
    options.jobs = 1;
    options.passTimeout = 1e-9; // everything overstays
    options.jsonPath = json;
    options.benchPath = bench;
    Harness harness("timeout_flush_tool", options);
    const auto wl =
        harness.profile(homogeneousWorkload("astar"), smallTraces());
    const std::vector<PassDesc> descs = {
        {wl->name(), Harness::passKey(wl, "slow")}};
    const auto outcomes =
        harness.runPasses(descs, [&](std::size_t) {
            return runStaticPolicy(harness.config(), wl->data,
                                   StaticPolicy::PerfFocused,
                                   wl->profile());
        });
    ASSERT_EQ(outcomes.size(), 1u);
    EXPECT_EQ(outcomes[0].status, PassStatus::Timeout);

    // The artifacts already exist, before finish() ever runs.
    ASSERT_TRUE(fs::exists(json));
    ASSERT_TRUE(fs::exists(bench));
    const std::string early = slurp(json);
    EXPECT_NE(early.find("\"status\": \"timeout\""),
              std::string::npos);

    testing::internal::CaptureStderr();
    EXPECT_EQ(harness.finish(), 3);
    testing::internal::GetCapturedStderr();
    // The report content is deterministic, so the final atomic
    // rewrite reproduces the early flush exactly.
    EXPECT_EQ(slurp(json), early);
    EXPECT_TRUE(fs::exists(bench));

    std::remove(json.c_str());
    std::remove(bench.c_str());
}

} // namespace
} // namespace ramp
