/**
 * @file
 * Tests for the placement map (src/placement/map).
 */

#include <gtest/gtest.h>

#include <set>

#include "placement/map.hh"

namespace ramp
{
namespace
{

TEST(PlacementMap, DefaultsToDdr)
{
    PlacementMap map(4);
    EXPECT_EQ(map.memoryOf(0), MemoryId::DDR);
    EXPECT_EQ(map.memoryOf(12345), MemoryId::DDR);
    EXPECT_EQ(map.hbmUsedPages(), 0u);
    EXPECT_EQ(map.hbmFreePages(), 4u);
}

TEST(PlacementMap, PlaceTracksCapacity)
{
    PlacementMap map(2);
    map.place(10, MemoryId::HBM);
    map.place(11, MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(10), MemoryId::HBM);
    EXPECT_EQ(map.hbmUsedPages(), 2u);
    EXPECT_EQ(map.hbmFreePages(), 0u);
}

TEST(PlacementMapDeathTest, OverfillIsFatal)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    EXPECT_EXIT(map.place(2, MemoryId::HBM),
                ::testing::ExitedWithCode(1), "capacity");
}

TEST(PlacementMap, DeviceAddrStablePerPage)
{
    PlacementMap map(4);
    map.place(7, MemoryId::HBM);
    const Addr a = map.deviceAddr(7 * pageSize + 128);
    const Addr b = map.deviceAddr(7 * pageSize + 128);
    EXPECT_EQ(a, b);
    // Offset within the page is preserved.
    EXPECT_EQ(a % pageSize, 128u);
}

TEST(PlacementMap, DistinctPagesGetDistinctFrames)
{
    PlacementMap map(8);
    std::set<Addr> frames;
    for (PageId page = 0; page < 8; ++page) {
        map.place(page, MemoryId::HBM);
        frames.insert(map.deviceAddr(page * pageSize) / pageSize);
    }
    EXPECT_EQ(frames.size(), 8u);
}

TEST(PlacementMap, SwapExchangesMemoriesAndFrames)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    const Addr hbm_frame = map.deviceAddr(1 * pageSize);
    const Addr ddr_frame = map.deviceAddr(2 * pageSize);

    EXPECT_TRUE(map.swap(1, 2));
    EXPECT_EQ(map.memoryOf(1), MemoryId::DDR);
    EXPECT_EQ(map.memoryOf(2), MemoryId::HBM);
    // Frames exchanged: page 2 now uses page 1's old HBM frame.
    EXPECT_EQ(map.deviceAddr(2 * pageSize), hbm_frame);
    EXPECT_EQ(map.deviceAddr(1 * pageSize), ddr_frame);
    EXPECT_EQ(map.hbmUsedPages(), 1u);
    EXPECT_EQ(map.migrations(), 2u);
}

TEST(PlacementMap, SwapRejectsWrongResidency)
{
    PlacementMap map(2);
    map.place(1, MemoryId::HBM);
    EXPECT_FALSE(map.swap(2, 1)); // 2 is not in HBM
    EXPECT_FALSE(map.swap(1, 1)); // partner not in DDR
    EXPECT_EQ(map.migrations(), 0u);
}

TEST(PlacementMap, PinnedPagesRefuseToMove)
{
    PlacementMap map(2);
    map.placePinned(1, MemoryId::HBM);
    EXPECT_TRUE(map.isPinned(1));
    EXPECT_FALSE(map.swap(1, 2));
    EXPECT_FALSE(map.evictToDdr(1));
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
}

TEST(PlacementMap, EvictAndPromoteRoundTrip)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    EXPECT_TRUE(map.evictToDdr(1));
    EXPECT_EQ(map.memoryOf(1), MemoryId::DDR);
    EXPECT_EQ(map.hbmFreePages(), 1u);
    EXPECT_TRUE(map.promoteToHbm(2));
    EXPECT_EQ(map.memoryOf(2), MemoryId::HBM);
    EXPECT_EQ(map.hbmFreePages(), 0u);
    // Full HBM rejects further promotions.
    EXPECT_FALSE(map.promoteToHbm(3));
    EXPECT_EQ(map.migrations(), 2u);
}

TEST(PlacementMap, FrameReuseAfterEviction)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    const Addr frame = map.deviceAddr(1 * pageSize);
    map.evictToDdr(1);
    map.promoteToHbm(2);
    EXPECT_EQ(map.deviceAddr(2 * pageSize), frame);
}

TEST(PlacementMap, HbmPagesEnumerates)
{
    PlacementMap map(3);
    map.place(5, MemoryId::HBM);
    map.place(9, MemoryId::HBM);
    map.place(2, MemoryId::DDR);
    const auto pages = map.hbmPages();
    const std::set<PageId> set(pages.begin(), pages.end());
    EXPECT_EQ(set, (std::set<PageId>{5, 9}));
}

} // namespace
} // namespace ramp
