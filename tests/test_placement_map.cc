/**
 * @file
 * Tests for the placement map (src/placement/map).
 */

#include <gtest/gtest.h>

#include <set>

#include "placement/map.hh"

namespace ramp
{
namespace
{

TEST(PlacementMap, DefaultsToDdr)
{
    PlacementMap map(4);
    EXPECT_EQ(map.memoryOf(0), MemoryId::DDR);
    EXPECT_EQ(map.memoryOf(12345), MemoryId::DDR);
    EXPECT_EQ(map.hbmUsedPages(), 0u);
    EXPECT_EQ(map.hbmFreePages(), 4u);
}

TEST(PlacementMap, PlaceTracksCapacity)
{
    PlacementMap map(2);
    map.place(10, MemoryId::HBM);
    map.place(11, MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(10), MemoryId::HBM);
    EXPECT_EQ(map.hbmUsedPages(), 2u);
    EXPECT_EQ(map.hbmFreePages(), 0u);
}

TEST(PlacementMapDeathTest, OverfillIsFatal)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    EXPECT_EXIT(map.place(2, MemoryId::HBM),
                ::testing::ExitedWithCode(1), "capacity");
}

TEST(PlacementMap, DeviceAddrStablePerPage)
{
    PlacementMap map(4);
    map.place(7, MemoryId::HBM);
    const Addr a = map.deviceAddr(7 * pageSize + 128);
    const Addr b = map.deviceAddr(7 * pageSize + 128);
    EXPECT_EQ(a, b);
    // Offset within the page is preserved.
    EXPECT_EQ(a % pageSize, 128u);
}

TEST(PlacementMap, DistinctPagesGetDistinctFrames)
{
    PlacementMap map(8);
    std::set<Addr> frames;
    for (PageId page = 0; page < 8; ++page) {
        map.place(page, MemoryId::HBM);
        frames.insert(map.deviceAddr(page * pageSize) / pageSize);
    }
    EXPECT_EQ(frames.size(), 8u);
}

TEST(PlacementMap, SwapExchangesMemoriesAndFrames)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    const Addr hbm_frame = map.deviceAddr(1 * pageSize);
    const Addr ddr_frame = map.deviceAddr(2 * pageSize);

    EXPECT_TRUE(map.swap(1, 2));
    EXPECT_EQ(map.memoryOf(1), MemoryId::DDR);
    EXPECT_EQ(map.memoryOf(2), MemoryId::HBM);
    // Frames exchanged: page 2 now uses page 1's old HBM frame.
    EXPECT_EQ(map.deviceAddr(2 * pageSize), hbm_frame);
    EXPECT_EQ(map.deviceAddr(1 * pageSize), ddr_frame);
    EXPECT_EQ(map.hbmUsedPages(), 1u);
    EXPECT_EQ(map.migrations(), 2u);
}

TEST(PlacementMap, SwapRejectsWrongResidency)
{
    PlacementMap map(2);
    map.place(1, MemoryId::HBM);
    EXPECT_FALSE(map.swap(2, 1)); // 2 is not in HBM
    EXPECT_FALSE(map.swap(1, 1)); // partner not in DDR
    EXPECT_EQ(map.migrations(), 0u);
}

TEST(PlacementMap, PinnedPagesRefuseToMove)
{
    PlacementMap map(2);
    map.placePinned(1, MemoryId::HBM);
    EXPECT_TRUE(map.isPinned(1));
    EXPECT_FALSE(map.swap(1, 2));
    EXPECT_FALSE(map.evictToDdr(1));
    EXPECT_EQ(map.memoryOf(1), MemoryId::HBM);
}

TEST(PlacementMap, EvictAndPromoteRoundTrip)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    EXPECT_TRUE(map.evictToDdr(1));
    EXPECT_EQ(map.memoryOf(1), MemoryId::DDR);
    EXPECT_EQ(map.hbmFreePages(), 1u);
    EXPECT_TRUE(map.promoteToHbm(2));
    EXPECT_EQ(map.memoryOf(2), MemoryId::HBM);
    EXPECT_EQ(map.hbmFreePages(), 0u);
    // Full HBM rejects further promotions.
    EXPECT_FALSE(map.promoteToHbm(3));
    EXPECT_EQ(map.migrations(), 2u);
}

TEST(PlacementMap, FrameReuseAfterEviction)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    const Addr frame = map.deviceAddr(1 * pageSize);
    map.evictToDdr(1);
    map.promoteToHbm(2);
    EXPECT_EQ(map.deviceAddr(2 * pageSize), frame);
}

TEST(PlacementMap, MoveRangeCapacityStopReportsMovedPrefix)
{
    // A batch promotion into an HBM with room for only part of the
    // span must report exactly the prefix it moved, with the
    // occupancy counters agreeing with the per-page residency.
    PlacementMap map(3);
    map.place(0, MemoryId::HBM); // 2 frames left for the batch
    for (PageId page = 10; page < 16; ++page)
        map.place(page, MemoryId::DDR);

    const auto movable = map.movablePages(10, 6, MemoryId::HBM);
    EXPECT_EQ(movable, (std::vector<PageId>{10, 11}));
    EXPECT_EQ(map.moveRange(10, 6, MemoryId::HBM), 2u);

    // The moved prefix is in HBM, the rest untouched.
    EXPECT_EQ(map.memoryOf(10), MemoryId::HBM);
    EXPECT_EQ(map.memoryOf(11), MemoryId::HBM);
    for (PageId page = 12; page < 16; ++page)
        EXPECT_EQ(map.memoryOf(page), MemoryId::DDR);
    EXPECT_EQ(map.hbmUsedPages(), 3u);
    EXPECT_EQ(map.hbmFreePages(), 0u);
    EXPECT_EQ(map.migrations(), 2u);

    // A second batch is a clean no-op, not a partial double-count.
    EXPECT_EQ(map.moveRange(10, 6, MemoryId::HBM), 0u);
    EXPECT_EQ(map.hbmUsedPages(), 3u);
}

TEST(PlacementMap, RetireHbmPageCrossesToDdr)
{
    PlacementMap map(2);
    map.place(5, MemoryId::HBM);
    const Addr dead = map.deviceAddr(5 * pageSize);

    const RetireOutcome out = map.retirePage(5);
    EXPECT_TRUE(out.retired);
    EXPECT_TRUE(out.crossedTier);
    EXPECT_EQ(out.from, MemoryId::HBM);
    EXPECT_EQ(out.to, MemoryId::DDR);
    EXPECT_TRUE(map.isRetired(5));
    EXPECT_TRUE(map.isPinned(5));
    EXPECT_EQ(map.memoryOf(5), MemoryId::DDR);
    // The dead frame shrank the tier: capacity and occupancy both
    // dropped by one.
    EXPECT_EQ(map.hbmCapacityPages(), 1u);
    EXPECT_EQ(map.hbmUsedPages(), 0u);
    EXPECT_TRUE(map.isFrameRetired(MemoryId::HBM, dead / pageSize));
    EXPECT_EQ(map.retiredFrames(MemoryId::HBM), 1u);

    // A second strike on the same page is a no-op.
    EXPECT_FALSE(map.retirePage(5).retired);
    EXPECT_EQ(map.hbmCapacityPages(), 1u);
}

TEST(PlacementMap, RetiredFrameIsNeverReissued)
{
    PlacementMap map(4);
    std::set<std::uint64_t> dead;
    for (PageId page = 0; page < 3; ++page) {
        map.place(page, MemoryId::HBM);
        dead.insert(map.deviceAddr(page * pageSize) / pageSize);
        map.retirePage(page);
    }
    // Fill the surviving capacity with fresh pages: none of their
    // frames may be a quarantined one.
    for (PageId page = 100; page < 101; ++page) {
        ASSERT_TRUE(map.promoteToHbm(page));
        const std::uint64_t frame =
            map.deviceAddr(page * pageSize) / pageSize;
        EXPECT_EQ(dead.count(frame), 0u);
        EXPECT_FALSE(map.isFrameRetired(MemoryId::HBM, frame));
    }
    EXPECT_EQ(map.retiredPages(),
              (std::vector<PageId>{0, 1, 2}));
}

TEST(PlacementMap, RetireIntoFullHbmStaysInDdrUnpinned)
{
    PlacementMap map(1);
    map.place(1, MemoryId::HBM);
    map.place(2, MemoryId::DDR);
    const Addr dead = map.deviceAddr(2 * pageSize);

    const RetireOutcome out = map.retirePage(2);
    EXPECT_TRUE(out.retired);
    EXPECT_FALSE(out.crossedTier); // HBM full: caller retries
    EXPECT_EQ(out.to, MemoryId::DDR);
    EXPECT_FALSE(map.isPinned(2)); // a retry may still promote it
    // Fresh DDR frame, old one quarantined.
    EXPECT_NE(map.deviceAddr(2 * pageSize), dead);
    EXPECT_TRUE(map.isFrameRetired(MemoryId::DDR, dead / pageSize));
}

TEST(PlacementMap, LoseCapacityGoesOverfullAndFreeSaturates)
{
    PlacementMap map(4);
    for (PageId page = 0; page < 4; ++page)
        map.place(page, MemoryId::HBM);

    EXPECT_EQ(map.loseCapacity(MemoryId::HBM, 3), 3u);
    EXPECT_EQ(map.hbmCapacityPages(), 1u);
    EXPECT_EQ(map.hbmUsedPages(), 4u);
    EXPECT_EQ(map.overfullHbmPages(), 3u);
    EXPECT_EQ(map.hbmFreePages(), 0u); // saturates, no underflow
    EXPECT_FALSE(map.promoteToHbm(9));

    // Draining the backlog restores a consistent budget.
    EXPECT_TRUE(map.evictToDdr(0));
    EXPECT_TRUE(map.evictToDdr(1));
    EXPECT_TRUE(map.evictToDdr(2));
    EXPECT_EQ(map.overfullHbmPages(), 0u);
    EXPECT_EQ(map.hbmFreePages(), 0u);

    // DDR capacity is not modelled; losing it is a no-op.
    EXPECT_EQ(map.loseCapacity(MemoryId::DDR, 10), 0u);
    // Losses clamp to the surviving budget.
    EXPECT_EQ(map.loseCapacity(MemoryId::HBM, 10), 1u);
    EXPECT_EQ(map.hbmCapacityPages(), 0u);
}

TEST(PlacementMap, HbmPagesEnumerates)
{
    PlacementMap map(3);
    map.place(5, MemoryId::HBM);
    map.place(9, MemoryId::HBM);
    map.place(2, MemoryId::DDR);
    const auto pages = map.hbmPages();
    const std::set<PageId> set(pages.begin(), pages.end());
    EXPECT_EQ(set, (std::set<PageId>{5, 9}));
}

} // namespace
} // namespace ramp
