/**
 * @file
 * Tests for the HMA system simulator (src/hma/system).
 */

#include <gtest/gtest.h>

#include "hma/system.hh"

namespace ramp
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.cores = 2;
    config.fcIntervalCycles = 10000;
    config.meaIntervalCycles = 1000;
    return config;
}

/** Two cores hammering a small set of pages. */
std::vector<CoreTrace>
smallTraces(int pages, int requests, double write_fraction = 0.25)
{
    std::vector<CoreTrace> traces(2);
    for (int core = 0; core < 2; ++core) {
        for (int i = 0; i < requests; ++i) {
            MemRequest req;
            const int page = (i * 7 + core) % pages;
            req.addr = static_cast<Addr>(page) * pageSize +
                       static_cast<Addr>(i % 64) * lineSize;
            req.gap = 20;
            req.core = static_cast<CoreId>(core);
            req.isWrite =
                (i % 100) < static_cast<int>(write_fraction * 100);
            traces[static_cast<std::size_t>(core)].push_back(req);
        }
    }
    return traces;
}

TEST(System, RunsAndReportsBasics)
{
    const auto config = smallConfig();
    HmaSystem system(config);
    const auto result = system.run(smallTraces(8, 2000),
                                   PlacementMap(config.hbmPages()));
    EXPECT_GT(result.makespan, 0u);
    EXPECT_EQ(result.requests, 4000u);
    EXPECT_GT(result.reads, 0u);
    EXPECT_GT(result.writes, 0u);
    EXPECT_GT(result.ipc, 0.0);
    EXPECT_GT(result.instructions, result.requests);
    EXPECT_EQ(result.hbmAccessFraction, 0.0);
    EXPECT_GT(result.memoryAvf, 0.0);
    EXPECT_GT(result.ser, 0.0);
    EXPECT_EQ(result.profile.footprintPages(), 8u);
}

TEST(System, HbmPlacementIsFasterThanDdrOnly)
{
    const auto config = smallConfig();
    const auto traces = smallTraces(32, 4000);

    HmaSystem ddr_system(config);
    const auto ddr = ddr_system.run(
        traces, PlacementMap(config.hbmPages()));

    PlacementMap hbm_map(config.hbmPages());
    for (PageId page = 0; page < 32; ++page)
        hbm_map.place(page, MemoryId::HBM);
    HmaSystem hbm_system(config);
    const auto hbm = hbm_system.run(traces, std::move(hbm_map));

    EXPECT_GT(hbm.ipc, ddr.ipc);
    EXPECT_EQ(hbm.hbmAccessFraction, 1.0);
    EXPECT_GT(hbm.ser, ddr.ser); // HBM residency raises SER
}

TEST(System, DeterministicAcrossRuns)
{
    const auto config = smallConfig();
    const auto traces = smallTraces(16, 3000);
    HmaSystem a(config), b(config);
    const auto ra = a.run(traces, PlacementMap(config.hbmPages()));
    const auto rb = b.run(traces, PlacementMap(config.hbmPages()));
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_EQ(ra.requests, rb.requests);
    EXPECT_DOUBLE_EQ(ra.ser, rb.ser);
}

TEST(System, SerIsResidencyWeighted)
{
    // Same trace; page 0 in HBM for the whole run raises SER by the
    // FIT ratio on that page's share.
    const auto config = smallConfig();
    const auto traces = smallTraces(2, 2000, 0.0);

    HmaSystem base_system(config);
    const auto base = base_system.run(
        traces, PlacementMap(config.hbmPages()));

    PlacementMap map(config.hbmPages());
    map.place(0, MemoryId::HBM);
    HmaSystem split_system(config);
    const auto split = split_system.run(traces, std::move(map));

    EXPECT_GT(split.ser, base.ser);
    EXPECT_LT(split.ser,
              base.ser * config.ser.fitRatio() + 1e-9);
}

TEST(System, MigrationEngineMovesPagesAndChargesTraffic)
{
    auto config = smallConfig();
    const auto traces = smallTraces(64, 20000);

    PerfFocusedMigration engine(config.fcIntervalCycles, 64);
    HmaSystem system(config);
    const auto result = system.run(
        traces, PlacementMap(config.hbmPages()), &engine);

    EXPECT_GT(result.migratedPages, 0u);
    EXPECT_GT(result.migrationEvents, 0u);
    // Promoted pages served some demand from HBM.
    EXPECT_GT(result.hbmAccessFraction, 0.0);
    // Page copies were charged into the memories.
    EXPECT_GT(result.hbmStats.writes + result.hbmStats.reads, 0u);
}

TEST(System, PinnedPagesSurviveMigration)
{
    auto config = smallConfig();
    const auto traces = smallTraces(64, 20000);

    PlacementMap map(config.hbmPages());
    map.placePinned(63, MemoryId::HBM); // cold page, pinned
    PerfFocusedMigration engine(config.fcIntervalCycles, 64);
    HmaSystem system(config);
    (void)system.run(traces, std::move(map), &engine);
    // The run's placement is internal; the invariant we can check is
    // that no crash occurred and migrations happened around the pin.
    SUCCEED();
}

TEST(System, AvfMatchesStandaloneTracker)
{
    const auto config = smallConfig();
    const auto traces = smallTraces(4, 1000);
    HmaSystem system(config);
    const auto result = system.run(
        traces, PlacementMap(config.hbmPages()));
    // All pages profiled and all AVFs in [0, 1].
    for (const auto &[page, stats] : result.profile.pages()) {
        EXPECT_GE(stats.avf, 0.0);
        EXPECT_LE(stats.avf, 1.0);
        EXPECT_GT(stats.hotness(), 0u);
    }
}

TEST(System, EmptyTracesYieldEmptyResult)
{
    const auto config = smallConfig();
    HmaSystem system(config);
    const auto result = system.run(std::vector<CoreTrace>(2),
                                   PlacementMap(config.hbmPages()));
    EXPECT_EQ(result.requests, 0u);
    EXPECT_EQ(result.makespan, 1u);
    EXPECT_EQ(result.ipc, 0.0);
}

} // namespace
} // namespace ramp
