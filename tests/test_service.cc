/**
 * @file
 * Tests for the multi-tenant placement service (src/service).
 *
 * Locks the service's structural guarantees: deterministic shard
 * routing and --jobs-invariant per-tenant results, the arbiter's
 * conservation invariants (grants never exceed capacity, demand, or
 * the fair-share quota), the fair-share vs reliability-weighted
 * ordering on a hand-built two-tenant contention scenario, and
 * bit-exactness of a single-tenant single-shard service run against
 * the same workload driven through a bare HmaSystem.
 */

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "runner/pool.hh"
#include "service/service.hh"

namespace ramp
{
namespace
{

SystemConfig
smallConfig()
{
    SystemConfig config = SystemConfig::scaledDefault();
    config.cores = 4;
    return config;
}

service::TenantSpec
smallSpec(std::uint32_t id)
{
    service::TenantSpec spec;
    spec.id = id;
    spec.footprintPages = 256;
    spec.requests = 4096;
    spec.cores = 2;
    spec.zipfSkew = 0.7;
    spec.writeFraction = 0.25;
    spec.seed = 100 + id;
    spec.hbmQuotaFraction = 0.5;
    spec.relClass = static_cast<service::ReliabilityClass>(id % 3);
    return spec;
}

service::ServiceResult
runService(const SystemConfig &system,
           const service::ServiceConfig &config,
           std::uint32_t tenants, unsigned jobs)
{
    service::PlacementService placement(system, config);
    for (std::uint32_t id = 1; id <= tenants; ++id)
        EXPECT_TRUE(placement.admit(smallSpec(id)));
    runner::ThreadPool pool(jobs);
    return placement.run(pool);
}

TEST(ServiceRouting, HashIsDeterministicAndInRange)
{
    for (unsigned shards : {1u, 2u, 5u, 16u}) {
        for (std::uint32_t id = 1; id < 200; ++id) {
            const unsigned a = service::shardOf(id, shards, 42);
            const unsigned b = service::shardOf(id, shards, 42);
            EXPECT_EQ(a, b);
            EXPECT_LT(a, shards);
        }
    }
    // A different salt reshuffles at least one tenant (16 shards,
    // 200 tenants: astronomically unlikely to collide entirely).
    bool moved = false;
    for (std::uint32_t id = 1; id < 200 && !moved; ++id)
        moved = service::shardOf(id, 16, 1) !=
                service::shardOf(id, 16, 2);
    EXPECT_TRUE(moved);
}

TEST(ServiceRouting, PageNamespaceRoundTrips)
{
    for (std::uint32_t id : {1u, 7u, 200u, 65535u}) {
        const PageId base = service::tenantBasePage(id);
        EXPECT_EQ(service::tenantOfPage(base), id);
        EXPECT_EQ(service::tenantOfPage(base + 1000), id);
    }
}

TEST(ServiceRouting, ResultsInvariantUnderJobs)
{
    const SystemConfig system = smallConfig();
    service::ServiceConfig config;
    config.shards = 3;
    config.epochs = 3;
    config.soloBaselines = true;

    const service::ServiceResult serial =
        runService(system, config, 9, 1);
    const service::ServiceResult wide =
        runService(system, config, 9, 4);

    ASSERT_EQ(serial.tenants.size(), wide.tenants.size());
    for (std::size_t i = 0; i < serial.tenants.size(); ++i) {
        const service::TenantResult &a = serial.tenants[i];
        const service::TenantResult &b = wide.tenants[i];
        EXPECT_EQ(a.id, b.id);
        EXPECT_EQ(a.shard, b.shard);
        EXPECT_EQ(a.requests, b.requests);
        EXPECT_EQ(a.instructions, b.instructions);
        EXPECT_EQ(a.makespan, b.makespan);
        EXPECT_EQ(a.soloMakespan, b.soloMakespan);
        EXPECT_EQ(a.grantedPages, b.grantedPages);
        EXPECT_EQ(a.quotaClips, b.quotaClips);
        EXPECT_EQ(a.movedPages, b.movedPages);
        EXPECT_DOUBLE_EQ(a.meanHbmPages, b.meanHbmPages);
        EXPECT_DOUBLE_EQ(a.ser, b.ser);
    }
    EXPECT_DOUBLE_EQ(serial.fairnessIndex, wide.fairnessIndex);
    EXPECT_EQ(serial.quotaClips, wide.quotaClips);
    EXPECT_EQ(serial.rebalanceMoves, wide.rebalanceMoves);
}

TEST(ServiceArbiter, GrantsConserveCapacityAndDemand)
{
    std::vector<service::TenantDemand> demands;
    for (std::uint32_t id = 1; id <= 6; ++id) {
        service::TenantDemand demand;
        demand.id = id;
        demand.demandPages = 100 * id;
        demand.quotaFraction = 0.4;
        demand.classWeight =
            service::reliabilityClassWeight(
                static_cast<service::ReliabilityClass>(id % 3));
        demand.meanAvf = 0.1 * static_cast<double>(id);
        demand.priority = static_cast<int>(id % 2);
        demands.push_back(demand);
    }
    for (const service::ArbiterPolicy policy :
         {service::ArbiterPolicy::FairShare,
          service::ArbiterPolicy::ReliabilityWeighted}) {
        for (const std::uint64_t capacity :
             {std::uint64_t{0}, std::uint64_t{50},
              std::uint64_t{500}, std::uint64_t{100000}}) {
            std::uint64_t clips = 0;
            const std::vector<std::uint64_t> grants =
                service::arbitrate(policy, capacity, demands,
                                   &clips);
            ASSERT_EQ(grants.size(), demands.size());
            std::uint64_t total = 0;
            for (std::size_t i = 0; i < grants.size(); ++i) {
                EXPECT_LE(grants[i], demands[i].demandPages);
                total += grants[i];
            }
            EXPECT_LE(total, capacity);
            if (policy == service::ArbiterPolicy::FairShare) {
                // Strict quotas, normalized when oversubscribed:
                // sum_qf = 2.4, so each tenant's ceiling is
                // capacity * 0.4 / 2.4.
                for (const std::uint64_t grant : grants)
                    EXPECT_LE(grant,
                              static_cast<std::uint64_t>(
                                  static_cast<double>(capacity) *
                                  0.4 / 2.4) +
                                  1);
            }
        }
    }
}

TEST(ServiceArbiter, ReliabilityWeightedFavorsCriticalTenants)
{
    // Two identical tenants contending 2:1 for capacity; they
    // differ only in reliability class and measured AVF.
    std::vector<service::TenantDemand> demands(2);
    demands[0].id = 1;
    demands[0].demandPages = 1000;
    demands[0].quotaFraction = 1.0;
    demands[0].classWeight = service::reliabilityClassWeight(
        service::ReliabilityClass::Critical);
    demands[0].meanAvf = 0.8;
    demands[1].id = 2;
    demands[1].demandPages = 1000;
    demands[1].quotaFraction = 1.0;
    demands[1].classWeight = service::reliabilityClassWeight(
        service::ReliabilityClass::Tolerant);
    demands[1].meanAvf = 0.1;

    const std::uint64_t capacity = 1000;
    const std::vector<std::uint64_t> fair = service::arbitrate(
        service::ArbiterPolicy::FairShare, capacity, demands);
    const std::vector<std::uint64_t> weighted =
        service::arbitrate(
            service::ArbiterPolicy::ReliabilityWeighted, capacity,
            demands);

    // Fair-share ignores the classes: equal quotas, equal grants.
    ASSERT_EQ(fair.size(), 2u);
    EXPECT_EQ(fair[0], fair[1]);

    // Reliability-weighted tilts toward the critical, high-AVF
    // tenant — strictly more than its fair share and than its
    // tolerant competitor.
    ASSERT_EQ(weighted.size(), 2u);
    EXPECT_GT(weighted[0], weighted[1]);
    EXPECT_GT(weighted[0], fair[0]);
    EXPECT_LE(weighted[0] + weighted[1], capacity);
}

TEST(ServiceAdmission, RejectsInvalidSpecs)
{
    const SystemConfig system = smallConfig();
    service::PlacementService placement(system, {});

    service::TenantSpec zero_id = smallSpec(1);
    zero_id.id = 0;
    EXPECT_FALSE(placement.admit(zero_id));

    EXPECT_TRUE(placement.admit(smallSpec(1)));
    EXPECT_FALSE(placement.admit(smallSpec(1))); // duplicate

    service::TenantSpec bad_quota = smallSpec(2);
    bad_quota.hbmQuotaFraction = 0.0;
    EXPECT_FALSE(placement.admit(bad_quota));
    bad_quota.hbmQuotaFraction = 1.5;
    EXPECT_FALSE(placement.admit(bad_quota));

    service::TenantSpec too_wide = smallSpec(3);
    too_wide.cores =
        static_cast<std::uint32_t>(system.cores) + 1;
    EXPECT_FALSE(placement.admit(too_wide));

    EXPECT_EQ(placement.tenantCount(), 1u);
}

TEST(ServiceEquivalence, SingleTenantMatchesBareSystem)
{
    // One tenant, one shard, one epoch, full quota: the service is
    // exactly "profile, place the granted hot-set prefix, run" —
    // the same steps driven by hand through a bare HmaSystem must
    // produce bit-identical performance and reliability numbers.
    const SystemConfig system = smallConfig();
    service::TenantSpec spec = smallSpec(1);
    spec.hbmQuotaFraction = 1.0;

    service::ServiceConfig config;
    config.shards = 1;
    config.epochs = 1;

    service::PlacementService placement(system, config);
    ASSERT_TRUE(placement.admit(spec));
    runner::ThreadPool pool(2);
    const service::ServiceResult result = placement.run(pool);
    ASSERT_EQ(result.tenants.size(), 1u);
    const service::TenantResult &tenant = result.tenants[0];

    // The bare equivalent of the service's single epoch.
    const std::vector<CoreTrace> traces =
        service::buildTenantTrace(spec);
    const PageProfile profile =
        service::profileTenantTrace(traces);
    const auto ranking = profile.sortedByDescending(
        [](const PageStats &stats) { return stats.hotness(); });
    const double mean_hotness = profile.meanHotness();
    std::uint64_t demand = 0;
    for (const auto &entry : ranking) {
        if (static_cast<double>(entry.second.hotness()) <
            mean_hotness)
            break;
        ++demand;
    }
    demand = std::max<std::uint64_t>(1, demand);

    const std::uint64_t capacity = system.hbmPages();
    const std::uint64_t grant = std::min(demand, capacity);
    PlacementMap map(capacity);
    const std::size_t target =
        std::min<std::size_t>(grant, ranking.size());
    for (std::size_t i = 0; i < target; ++i) {
        if (map.hbmFreePages() == 0)
            break;
        map.place(ranking[i].first, MemoryId::HBM);
    }
    HmaSystem bare(system);
    const SimResult expected = bare.run(traces, map);

    EXPECT_EQ(tenant.requests, expected.requests);
    EXPECT_EQ(tenant.instructions, expected.instructions);
    EXPECT_EQ(tenant.makespan, expected.makespan);
    EXPECT_DOUBLE_EQ(tenant.ser, expected.ser);
    EXPECT_EQ(tenant.grantedPages, grant);
    EXPECT_EQ(tenant.demandPages,
              std::max<std::uint64_t>(
                  1, expected.profile.footprintPages()));
}

TEST(ServiceFaults, StormDegradesOnlyTheStruckShard)
{
    const SystemConfig system = smallConfig();
    service::ServiceConfig config;
    config.shards = 2;
    config.epochs = 3;
    std::string error;
    config.faultPlan = parseFaultPlan(
        "uncorrected:page=3,epoch=2;capacity:tier=hbm,pct=25,"
        "epoch=2",
        error);
    ASSERT_TRUE(error.empty()) << error;
    config.faultShard = 0;

    const service::ServiceResult result =
        runService(system, config, 8, 2);

    ASSERT_EQ(result.shards.size(), 2u);
    EXPECT_TRUE(result.shards[0].degraded);
    EXPECT_GT(result.shards[0].faultsApplied, 0u);
    EXPECT_GT(result.shards[0].capacityLostPages, 0u);
    EXPECT_FALSE(result.shards[1].degraded);
    EXPECT_EQ(result.shards[1].faultsApplied, 0u);

    // Degradation is attributed tenant by tenant along the
    // routing: exactly the tenants homed on shard 0.
    for (const service::TenantResult &tenant : result.tenants)
        EXPECT_EQ(tenant.degraded, tenant.shard == 0u);
}

} // namespace
} // namespace ramp
