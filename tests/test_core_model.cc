/**
 * @file
 * Tests for the trace-driven core timing model (src/hma/core_model).
 */

#include <gtest/gtest.h>

#include "hma/core_model.hh"

namespace ramp
{
namespace
{

CoreTrace
makeTrace(std::initializer_list<MemRequest> reqs)
{
    return CoreTrace(reqs);
}

TEST(CoreModel, ComputeBoundIssueRate)
{
    // 400 non-memory instructions at width 4 -> ready at cycle 100.
    const auto trace = makeTrace({{0x0, 400, 0, false}});
    CoreModel core(trace, 4, 128, 8);
    EXPECT_FALSE(core.done());
    EXPECT_EQ(core.nextIssueTime(), 100u);
}

TEST(CoreModel, GapAccumulatesAcrossRequests)
{
    const auto trace =
        makeTrace({{0x0, 40, 0, true}, {0x40, 40, 0, true}});
    CoreModel core(trace, 4, 128, 8);
    EXPECT_EQ(core.nextIssueTime(), 10u);
    core.retire(0); // posted write, returns immediately
    EXPECT_EQ(core.nextIssueTime(), 20u);
}

TEST(CoreModel, MshrLimitStallsIssue)
{
    // Two reads back-to-back with max one outstanding: the second
    // must wait for the first read's completion.
    const auto trace =
        makeTrace({{0x0, 0, 0, false}, {0x40, 0, 0, false}});
    CoreModel core(trace, 4, 128, 1);
    EXPECT_EQ(core.nextIssueTime(), 0u);
    core.retire(500); // first read completes at 500
    EXPECT_EQ(core.nextIssueTime(), 500u);
}

TEST(CoreModel, RobWindowBoundsRunAhead)
{
    // A long-latency read followed by more instructions than the ROB
    // holds: issue stalls until the read returns.
    CoreTrace trace;
    trace.push_back({0x0, 0, 0, false});    // read at ~0
    trace.push_back({0x40, 200, 0, false}); // 201 instrs later
    CoreModel core(trace, 4, /*rob=*/128, 8);
    core.retire(10000);
    // Compute-ready would be ~50 cycles, but the ROB (128) fills
    // before instruction 201, forcing a wait for the read.
    EXPECT_EQ(core.nextIssueTime(), 10000u);
}

TEST(CoreModel, RobDoesNotStallWithinWindow)
{
    CoreTrace trace;
    trace.push_back({0x0, 0, 0, false});
    trace.push_back({0x40, 50, 0, false}); // within the 128 window
    CoreModel core(trace, 4, 128, 8);
    core.retire(10000);
    EXPECT_LT(core.nextIssueTime(), 100u);
}

TEST(CoreModel, PostedWritesDoNotBlock)
{
    CoreTrace trace;
    for (int i = 0; i < 20; ++i)
        trace.push_back({static_cast<Addr>(i) * 64, 0, 0, true});
    CoreModel core(trace, 4, 128, 1);
    Cycle last_ready = 0;
    while (!core.done()) {
        last_ready = core.nextIssueTime();
        core.retire(last_ready);
    }
    EXPECT_LT(last_ready, 20u);
}

TEST(CoreModel, CountsInstructionsAndFinishTime)
{
    const auto trace =
        makeTrace({{0x0, 9, 0, false}, {0x40, 9, 0, true}});
    CoreModel core(trace, 4, 128, 8);
    core.retire(100);
    core.retire(0);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.instructions(), 20u);
    EXPECT_GE(core.finishTime(), 100u);
}

TEST(CoreModel, EmptyTraceIsDone)
{
    const CoreTrace trace;
    CoreModel core(trace, 4, 128, 8);
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.instructions(), 0u);
}

TEST(CoreModelDeathTest, ZeroParametersAreFatal)
{
    const CoreTrace trace;
    EXPECT_EXIT((CoreModel{trace, 0, 128, 8}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT((CoreModel{trace, 4, 0, 8}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT((CoreModel{trace, 4, 128, 0}),
                ::testing::ExitedWithCode(1), "");
}

} // namespace
} // namespace ramp
