/**
 * @file
 * Tests for fault geometry and the ECC schemes
 * (src/reliability/fault, src/reliability/ecc).
 */

#include <gtest/gtest.h>

#include <vector>

#include "reliability/ecc.hh"
#include "reliability/fit.hh"

namespace ramp
{
namespace
{

ChipGeometry
x8Geometry()
{
    ChipGeometry geometry;
    geometry.bitsPerWord = 8;
    return geometry;
}

FaultRecord
bitFault(std::uint32_t chip, std::uint64_t bank, std::uint64_t row,
         std::uint64_t column, std::uint64_t bit)
{
    FaultRecord fault;
    fault.mode = FaultMode::Bit;
    fault.chip = chip;
    fault.bank = bank;
    fault.row = row;
    fault.column = column;
    fault.bit = bit;
    return fault;
}

FaultRecord
rowFault(std::uint32_t chip, std::uint64_t bank, std::uint64_t row)
{
    FaultRecord fault;
    fault.mode = FaultMode::Row;
    fault.chip = chip;
    fault.bank = bank;
    fault.row = row;
    return fault;
}

TEST(Fault, MultiBitClassification)
{
    const auto geometry = x8Geometry();
    FaultRecord fault;
    fault.mode = FaultMode::Bit;
    EXPECT_FALSE(fault.multiBit(geometry));
    fault.mode = FaultMode::Column;
    EXPECT_FALSE(fault.multiBit(geometry));
    for (const auto mode : {FaultMode::Word, FaultMode::Row,
                            FaultMode::Bank, FaultMode::Rank}) {
        fault.mode = mode;
        EXPECT_TRUE(fault.multiBit(geometry))
            << faultModeName(mode);
    }
}

TEST(Fault, SingleBitChipHasNoMultiBitModes)
{
    ChipGeometry geometry;
    geometry.bitsPerWord = 1;
    FaultRecord fault;
    fault.mode = FaultMode::Row;
    EXPECT_FALSE(fault.multiBit(geometry));
}

TEST(Fault, SameWordIntersection)
{
    // Same coordinates intersect.
    EXPECT_TRUE(sameWordPossible(bitFault(0, 1, 2, 3, 0),
                                 bitFault(1, 1, 2, 3, 0)));
    // Different rows cannot share a word.
    EXPECT_FALSE(sameWordPossible(bitFault(0, 1, 2, 3, 0),
                                  bitFault(1, 1, 9, 3, 0)));
    // Row faults wildcard the column: intersects any same-row bit.
    EXPECT_TRUE(sameWordPossible(rowFault(0, 1, 2),
                                 bitFault(1, 1, 2, 77, 0)));
    // A rank fault wildcards everything.
    FaultRecord rank;
    rank.mode = FaultMode::Rank;
    EXPECT_TRUE(sameWordPossible(rank, bitFault(3, 7, 8, 9, 2)));
}

TEST(Fault, SameBitSameChipDoesNotDefeatSecDed)
{
    const auto geometry = x8Geometry();
    const auto a = bitFault(0, 1, 2, 3, 5);
    const auto b = bitFault(0, 1, 2, 3, 5);
    EXPECT_FALSE(defeatsSingleBitCorrection(a, b, geometry));
}

TEST(Fault, TwoBitsDifferentChipsDefeatSecDed)
{
    const auto geometry = x8Geometry();
    const auto a = bitFault(0, 1, 2, 3, 5);
    const auto b = bitFault(1, 1, 2, 3, 5);
    EXPECT_TRUE(defeatsSingleBitCorrection(a, b, geometry));
}

TEST(Ecc, NoFaultsNoError)
{
    const std::vector<FaultRecord> none;
    EXPECT_EQ(classifyFaults(EccKind::SecDed, none, x8Geometry()),
              EccOutcome::NoError);
}

TEST(Ecc, NoneSchemeFailsOnAnything)
{
    const std::vector<FaultRecord> faults = {bitFault(0, 0, 0, 0, 0)};
    EXPECT_EQ(classifyFaults(EccKind::None, faults, x8Geometry()),
              EccOutcome::Uncorrected);
}

TEST(Ecc, SecDedCorrectsSingleBit)
{
    const std::vector<FaultRecord> faults = {bitFault(0, 0, 0, 0, 0)};
    EXPECT_EQ(classifyFaults(EccKind::SecDed, faults, x8Geometry()),
              EccOutcome::Corrected);
}

TEST(Ecc, SecDedCorrectsColumnFault)
{
    FaultRecord column;
    column.mode = FaultMode::Column;
    column.chip = 0;
    column.bank = 1;
    column.column = 5;
    column.bit = 2;
    const std::vector<FaultRecord> faults = {column};
    EXPECT_EQ(classifyFaults(EccKind::SecDed, faults, x8Geometry()),
              EccOutcome::Corrected);
}

TEST(Ecc, SecDedFailsOnCoarseModes)
{
    for (const auto mode : {FaultMode::Word, FaultMode::Row,
                            FaultMode::Bank, FaultMode::Rank}) {
        FaultRecord fault;
        fault.mode = mode;
        fault.chip = 0;
        fault.bank = mode == FaultMode::Rank ? faultWildcard : 0;
        const std::vector<FaultRecord> faults = {fault};
        EXPECT_EQ(
            classifyFaults(EccKind::SecDed, faults, x8Geometry()),
            EccOutcome::Uncorrected)
            << faultModeName(mode);
    }
}

TEST(Ecc, SecDedFailsOnOverlappingBitPair)
{
    const std::vector<FaultRecord> faults = {
        bitFault(0, 1, 2, 3, 0), bitFault(4, 1, 2, 3, 1)};
    EXPECT_EQ(classifyFaults(EccKind::SecDed, faults, x8Geometry()),
              EccOutcome::Uncorrected);
}

TEST(Ecc, SecDedCorrectsDisjointBitPair)
{
    const std::vector<FaultRecord> faults = {
        bitFault(0, 1, 2, 3, 0), bitFault(4, 1, 9, 3, 1)};
    EXPECT_EQ(classifyFaults(EccKind::SecDed, faults, x8Geometry()),
              EccOutcome::Corrected);
}

TEST(Ecc, ChipKillCorrectsAnySingleChipFault)
{
    ChipGeometry x4;
    x4.bitsPerWord = 4;
    for (const auto mode : {FaultMode::Bit, FaultMode::Word,
                            FaultMode::Column, FaultMode::Row,
                            FaultMode::Bank, FaultMode::Rank}) {
        FaultRecord fault;
        fault.mode = mode;
        fault.chip = 7;
        const std::vector<FaultRecord> faults = {fault};
        EXPECT_EQ(classifyFaults(EccKind::ChipKill, faults, x4),
                  EccOutcome::Corrected)
            << faultModeName(mode);
    }
}

TEST(Ecc, ChipKillCorrectsManyFaultsOnOneChip)
{
    const std::vector<FaultRecord> faults = {
        rowFault(3, 0, 1), rowFault(3, 0, 2), bitFault(3, 1, 2, 3, 0)};
    EXPECT_EQ(classifyFaults(EccKind::ChipKill, faults, x8Geometry()),
              EccOutcome::Corrected);
}

TEST(Ecc, ChipKillFailsOnTwoChipOverlap)
{
    const std::vector<FaultRecord> faults = {rowFault(0, 2, 5),
                                             rowFault(1, 2, 5)};
    EXPECT_EQ(classifyFaults(EccKind::ChipKill, faults, x8Geometry()),
              EccOutcome::Uncorrected);
}

TEST(Ecc, ChipKillSurvivesTwoChipDisjointFaults)
{
    const std::vector<FaultRecord> faults = {rowFault(0, 2, 5),
                                             rowFault(1, 2, 6)};
    EXPECT_EQ(classifyFaults(EccKind::ChipKill, faults, x8Geometry()),
              EccOutcome::Corrected);
}

TEST(Fit, FieldStudyRatesArePositive)
{
    const auto rates = FitRates::fieldStudyDdr();
    for (int m = 0; m < numFaultModes; ++m)
        EXPECT_GT(rates.of(static_cast<FaultMode>(m)), 0.0);
    EXPECT_NEAR(rates.total(), 14.2 + 1.4 + 1.4 + 0.2 + 0.8 + 0.3,
                1e-12);
}

TEST(Fit, ScalingMultipliesEveryMode)
{
    const auto base = FitRates::fieldStudyDdr();
    const auto scaled = base.scaled(3.0);
    for (int m = 0; m < numFaultModes; ++m) {
        const auto mode = static_cast<FaultMode>(m);
        EXPECT_DOUBLE_EQ(scaled.of(mode), 3.0 * base.of(mode));
    }
    EXPECT_DOUBLE_EQ(FitRates::stacked(2.0).total(),
                     2.0 * base.total());
}

TEST(Fit, ModeNames)
{
    EXPECT_STREQ(faultModeName(FaultMode::Bit), "bit");
    EXPECT_STREQ(faultModeName(FaultMode::Rank), "rank");
}

} // namespace
} // namespace ramp
