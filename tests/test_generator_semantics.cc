/**
 * @file
 * Semantic tests of the synthetic workload model: the structure
 * parameters must produce the population-level properties the
 * paper's study depends on (write-ratio -> risk, streaming AVF
 * control, churn-driven hot-set drift).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <unordered_map>

#include "reliability/avf.hh"
#include "trace/generator.hh"

namespace ramp
{
namespace
{

/** Replay core 0's trace through an AVF tracker, indexing by page. */
std::unordered_map<PageId, double>
pageAvfsOfCoreZero(const WorkloadSpec &spec,
                   const WorkloadLayout &layout, double scale)
{
    GeneratorOptions options;
    options.traceScale = scale;
    const auto traces = generateTraces(spec, layout, options);
    AvfTracker tracker;
    Cycle now = 0;
    for (const auto &req : traces[0])
        tracker.onAccess(req.addr, req.isWrite, now += 10);
    tracker.finalize(now + 1);
    std::unordered_map<PageId, double> result;
    for (const auto &[page, avf] : tracker.pageAvfs())
        result[page] = avf;
    return result;
}

/** Mean AVF of core 0's instance of a structure. */
double
structureAvf(const std::unordered_map<PageId, double> &avfs,
             const WorkloadLayout &layout, const std::string &name)
{
    for (const auto &range : layout.ranges) {
        if (range.core != 0 || range.structure != name)
            continue;
        double sum = 0;
        for (PageId page = range.firstPage; page < range.endPage();
             ++page) {
            const auto it = avfs.find(page);
            sum += it == avfs.end() ? 0.0 : it->second;
        }
        return sum / static_cast<double>(range.pages);
    }
    ADD_FAILURE() << "structure not found: " << name;
    return 0;
}

TEST(GeneratorSemantics, WriteHeavyStructuresHaveLowerAvf)
{
    // mcf: "buckets" (write-heavy) vs "arcs" (read-swept) — both
    // densely covered, so the write-ratio risk proxy (Section 5.3)
    // must translate into lower measured AVF for buckets. (Sparse
    // read structures like "nodes" can have lower structure-mean
    // AVF purely through line coverage; the proxy compares pages of
    // similar coverage, which these two structures provide.)
    const auto spec = homogeneousWorkload("mcf");
    const auto layout = buildLayout(spec);
    const auto avfs = pageAvfsOfCoreZero(spec, layout, 0.3);
    EXPECT_LT(structureAvf(avfs, layout, "buckets"),
              structureAvf(avfs, layout, "arcs"));
}

TEST(GeneratorSemantics, TempVectorsAreLowRiskInMilc)
{
    // milc: tmp_vecs (write-heavy) vs lattice (read-dominated);
    // both carry dense traffic, so the risk ordering must hold.
    const auto spec = homogeneousWorkload("milc");
    const auto layout = buildLayout(spec);
    const auto avfs = pageAvfsOfCoreZero(spec, layout, 0.3);
    EXPECT_LT(structureAvf(avfs, layout, "tmp_vecs"),
              structureAvf(avfs, layout, "lattice"));
}

TEST(GeneratorSemantics, StreamingReadProbabilityControlsAvf)
{
    // lbm: srcGrid is consumed almost fully (q = 0.9), dstGrid only
    // partially (q = 0.2): srcGrid must be the riskier grid.
    const auto spec = homogeneousWorkload("lbm");
    const auto layout = buildLayout(spec);
    const auto avfs = pageAvfsOfCoreZero(spec, layout, 0.3);
    EXPECT_GT(structureAvf(avfs, layout, "srcGrid"),
              structureAvf(avfs, layout, "dstGrid"));
}

TEST(GeneratorSemantics, ChurnShiftsTheHotSetOverTime)
{
    // omnetpp's event heap churns; the hottest pages of the first
    // third of the trace must differ from the last third's.
    const auto spec = homogeneousWorkload("omnetpp");
    const auto layout = buildLayout(spec);
    GeneratorOptions options;
    options.traceScale = 1.0;
    const auto traces = generateTraces(spec, layout, options);
    const auto &trace = traces[0];

    auto top_pages = [&](std::size_t begin, std::size_t end) {
        std::unordered_map<PageId, int> counts;
        for (std::size_t i = begin; i < end; ++i)
            ++counts[pageOf(trace[i].addr)];
        std::vector<std::pair<int, PageId>> order;
        for (const auto &[page, count] : counts)
            order.push_back({count, page});
        std::sort(order.rbegin(), order.rend());
        std::set<PageId> top;
        for (std::size_t i = 0; i < std::min<std::size_t>(
                                        30, order.size());
             ++i)
            top.insert(order[i].second);
        return top;
    };

    const auto early = top_pages(0, trace.size() / 3);
    const auto late = top_pages(2 * trace.size() / 3, trace.size());
    std::size_t common = 0;
    for (const PageId page : early)
        common += late.count(page);
    EXPECT_LT(common, early.size()); // some drift happened
}

TEST(GeneratorSemantics, MixInheritsComponentBehaviour)
{
    // Cores of a mix run exactly their program's structures; the
    // per-core MPKI matches the per-core program.
    const auto spec = mixWorkload("mix4");
    const auto layout = buildLayout(spec);
    GeneratorOptions options;
    options.traceScale = 0.05;
    const auto traces = generateTraces(spec, layout, options);
    for (int core = 0; core < workloadCores; ++core) {
        const auto &profile = benchmarkProfile(
            spec.coreBenchmarks[static_cast<std::size_t>(core)]);
        const auto stats =
            computeStats(traces[static_cast<std::size_t>(core)]);
        EXPECT_NEAR(stats.mpki(), profile.mpki,
                    profile.mpki * 0.25)
            << "core " << core << " (" << profile.name << ")";
    }
}

} // namespace
} // namespace ramp
