/**
 * @file
 * Tests for the set-associative cache model (src/cache/cache).
 */

#include <gtest/gtest.h>

#include "cache/cache.hh"
#include "common/rng.hh"

namespace ramp
{
namespace
{

CacheConfig
tinyCache(std::uint64_t size = 512, std::uint32_t ways = 2)
{
    return {size, ways, 64};
}

TEST(Cache, ColdMissThenHit)
{
    SetAssocCache cache(tinyCache());
    const auto miss = cache.access(0x1000, false);
    EXPECT_FALSE(miss.hit);
    EXPECT_FALSE(miss.writeback);
    const auto hit = cache.access(0x1000, false);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SameLineDifferentBytesHit)
{
    SetAssocCache cache(tinyCache());
    cache.access(0x1000, false);
    EXPECT_TRUE(cache.access(0x103F, false).hit);
    EXPECT_FALSE(cache.access(0x1040, false).hit);
}

TEST(Cache, LruEviction)
{
    // 512 B, 2-way, 64 B lines -> 4 sets. Lines mapping to set 0:
    // addresses 0, 256, 512, ...
    SetAssocCache cache(tinyCache());
    cache.access(0, false);
    cache.access(256, false);
    cache.access(0, false);   // 0 becomes MRU
    cache.access(512, false); // evicts 256 (LRU)
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(256));
    EXPECT_TRUE(cache.contains(512));
}

TEST(Cache, DirtyVictimReportsWritebackAddress)
{
    SetAssocCache cache(tinyCache());
    cache.access(0, true);      // dirty
    cache.access(256, false);
    const auto result = cache.access(512, false); // evicts 0
    EXPECT_TRUE(result.writeback);
    EXPECT_EQ(result.writebackAddr, 0u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, CleanVictimHasNoWriteback)
{
    SetAssocCache cache(tinyCache());
    cache.access(0, false);
    cache.access(256, false);
    const auto result = cache.access(512, false);
    EXPECT_FALSE(result.writeback);
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, WriteHitMarksDirty)
{
    SetAssocCache cache(tinyCache());
    cache.access(0, false);
    cache.access(0, true); // now dirty via hit
    cache.access(256, false);
    const auto result = cache.access(512, false);
    EXPECT_TRUE(result.writeback);
}

TEST(Cache, FlushReturnsDirtyLines)
{
    SetAssocCache cache(tinyCache());
    cache.access(0, true);
    cache.access(64, false);
    cache.access(128, true);
    const auto dirty = cache.flush();
    EXPECT_EQ(dirty.size(), 2u);
    EXPECT_FALSE(cache.contains(0));
    EXPECT_FALSE(cache.contains(64));
}

TEST(Cache, MissRatioComputation)
{
    SetAssocCache cache(tinyCache());
    cache.access(0, false);
    cache.access(0, false);
    cache.access(0, false);
    cache.access(64, false);
    EXPECT_NEAR(cache.stats().missRatio(), 0.5, 1e-12);
}

TEST(Cache, NumSetsFromGeometry)
{
    EXPECT_EQ(CacheConfig({16 * 1024, 4, 64}).numSets(), 64u);
    EXPECT_EQ(CacheConfig({512 * 1024, 16, 64}).numSets(), 512u);
}

TEST(CacheDeathTest, InvalidGeometryIsFatal)
{
    EXPECT_EXIT(SetAssocCache(CacheConfig{0, 2, 64}),
                ::testing::ExitedWithCode(1), "");
    EXPECT_EXIT(SetAssocCache(CacheConfig{100, 2, 64}),
                ::testing::ExitedWithCode(1), "multiple");
}

/** Property: larger caches never miss more on the same stream. */
class CacheSizeTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(CacheSizeTest, BiggerCacheFewerMisses)
{
    const std::uint64_t size = GetParam();
    SetAssocCache small(tinyCache(size, 4));
    SetAssocCache big(tinyCache(size * 4, 4));
    Rng rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.nextRange(64 * 1024);
        small.access(addr, rng.nextBool(0.3));
        big.access(addr, rng.nextBool(0.3));
    }
    EXPECT_LE(big.stats().misses, small.stats().misses);
    EXPECT_EQ(small.stats().hits + small.stats().misses,
              small.stats().accesses);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeTest,
                         ::testing::Values(1024, 4096, 16384));

} // namespace
} // namespace ramp
