/**
 * @file
 * Fuzz/property tests for the placement map: random operation
 * sequences must preserve every structural invariant.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hh"
#include "placement/map.hh"

namespace ramp
{
namespace
{

class PlacementFuzzTest
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlacementFuzzTest, InvariantsHoldUnderRandomOps)
{
    Rng rng(GetParam());
    const std::uint64_t capacity = 32;
    const PageId universe = 256;
    PlacementMap map(capacity);

    // Shadow model of residency and pinning.
    std::map<PageId, MemoryId> shadow;
    std::set<PageId> pinned;

    // Seed some initial placements (a few pinned).
    for (PageId page = 0; page < capacity / 2; ++page) {
        if (rng.nextBool(0.2)) {
            map.placePinned(page, MemoryId::HBM);
            pinned.insert(page);
        } else {
            map.place(page, MemoryId::HBM);
        }
        shadow[page] = MemoryId::HBM;
    }

    for (int op = 0; op < 5000; ++op) {
        const PageId a = rng.nextRange(universe);
        const PageId b = rng.nextRange(universe);
        auto mem_of = [&](PageId page) {
            const auto it = shadow.find(page);
            return it == shadow.end() ? MemoryId::DDR : it->second;
        };

        switch (rng.nextRange(4)) {
          case 0: { // swap
            const bool ok = map.swap(a, b);
            const bool expect = mem_of(a) == MemoryId::HBM &&
                                mem_of(b) == MemoryId::DDR &&
                                !pinned.count(a) && !pinned.count(b);
            ASSERT_EQ(ok, expect) << "swap " << a << "," << b;
            if (ok) {
                shadow[a] = MemoryId::DDR;
                shadow[b] = MemoryId::HBM;
            }
            break;
          }
          case 1: { // evict
            const bool ok = map.evictToDdr(a);
            const bool expect =
                mem_of(a) == MemoryId::HBM && !pinned.count(a);
            ASSERT_EQ(ok, expect) << "evict " << a;
            if (ok)
                shadow[a] = MemoryId::DDR;
            break;
          }
          case 2: { // promote
            const bool ok = map.promoteToHbm(a);
            std::uint64_t used = 0;
            for (const auto &[page, mem] : shadow)
                used += mem == MemoryId::HBM ? 1 : 0;
            const bool expect = mem_of(a) == MemoryId::DDR &&
                                !pinned.count(a) && used < capacity;
            ASSERT_EQ(ok, expect) << "promote " << a;
            if (ok)
                shadow[a] = MemoryId::HBM;
            break;
          }
          default: { // access (frame allocation)
            const Addr addr =
                a * pageSize + rng.nextRange(pageSize);
            const Addr dev = map.deviceAddr(addr);
            EXPECT_EQ(dev % pageSize, addr % pageSize);
            break;
          }
        }

        // Invariants after every operation.
        std::uint64_t used = 0;
        for (const auto &[page, mem] : shadow)
            used += mem == MemoryId::HBM ? 1 : 0;
        ASSERT_EQ(map.hbmUsedPages(), used);
        ASSERT_LE(map.hbmUsedPages(), capacity);
    }

    // Final residency agrees everywhere; frames unique per memory.
    const auto hbm_pages = map.hbmPages();
    std::set<PageId> hbm_set(hbm_pages.begin(), hbm_pages.end());
    for (const auto &[page, mem] : shadow)
        ASSERT_EQ(mem == MemoryId::HBM, hbm_set.count(page) == 1)
            << "page " << page;

    std::set<std::uint64_t> hbm_frames, ddr_frames;
    for (PageId page = 0; page < universe; ++page) {
        const auto mem_it = shadow.find(page);
        const bool touched =
            mem_it != shadow.end() || true; // deviceAddr allocates
        if (!touched)
            continue;
        const std::uint64_t frame =
            map.deviceAddr(page * pageSize) / pageSize;
        auto &frames = map.memoryOf(page) == MemoryId::HBM
                           ? hbm_frames
                           : ddr_frames;
        ASSERT_TRUE(frames.insert(frame).second)
            << "duplicate frame for page " << page;
    }
    EXPECT_LE(hbm_frames.size(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementFuzzTest,
                         ::testing::Values(101, 202, 303, 404, 505,
                                           606));

} // namespace
} // namespace ramp
