/**
 * @file
 * Property tests for the DRAM timing model on random request
 * streams: latency floors, bus accounting, and preset ordering.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "dram/memory.hh"

namespace ramp
{
namespace
{

class DramFuzzTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>>
{
  protected:
    DramConfig config() const
    {
        return std::get<0>(GetParam()) == 0 ? ddr3Config()
                                            : hbmConfig();
    }
};

TEST_P(DramFuzzTest, CompletionNeverBeforeMinimumLatency)
{
    DramMemory dram(config());
    Rng rng(std::get<1>(GetParam()));
    const auto &t = dram.config().timing;
    Cycle now = 0;
    for (int i = 0; i < 20000; ++i) {
        now += rng.nextRange(12);
        const Addr addr = rng.nextRange(1 << 24) / 64 * 64;
        const bool is_write = rng.nextBool(0.3);
        const Cycle completion = dram.access(now, addr, is_write);
        const Cycle floor =
            (is_write ? t.tCWL : t.tCL) + t.tBURST;
        ASSERT_GE(completion, now + floor) << "request " << i;
    }
}

TEST_P(DramFuzzTest, BusBusyEqualsAccessesTimesBurst)
{
    DramMemory dram(config());
    Rng rng(std::get<1>(GetParam()) + 1);
    const int n = 5000;
    Cycle now = 0;
    for (int i = 0; i < n; ++i) {
        now += rng.nextRange(20);
        dram.access(now, rng.nextRange(1 << 24) / 64 * 64,
                    rng.nextBool(0.3));
    }
    EXPECT_EQ(dram.stats().busBusyCycles,
              static_cast<Cycle>(n) * dram.config().timing.tBURST);
    EXPECT_EQ(dram.stats().reads + dram.stats().writes,
              static_cast<std::uint64_t>(n));
    EXPECT_EQ(dram.stats().rowHits + dram.stats().rowMisses,
              static_cast<std::uint64_t>(n));
}

TEST_P(DramFuzzTest, SequentialStreamIsMostlyRowHits)
{
    DramMemory dram(config());
    Cycle now = 0;
    for (Addr addr = 0; addr < (1 << 20); addr += lineSize)
        dram.access(now += 4, addr, false);
    EXPECT_GT(dram.stats().rowHitRatio(), 0.9);
}

TEST_P(DramFuzzTest, RandomStreamHasMoreMissesThanSequential)
{
    DramMemory sequential(config());
    DramMemory random(config());
    Rng rng(std::get<1>(GetParam()) + 2);
    Cycle now = 0;
    for (int i = 0; i < 10000; ++i) {
        now += 4;
        sequential.access(now, static_cast<Addr>(i) * lineSize,
                          false);
        random.access(now, rng.nextRange(1 << 26) / 64 * 64, false);
    }
    EXPECT_GT(random.stats().rowMisses,
              sequential.stats().rowMisses);
}

INSTANTIATE_TEST_SUITE_P(
    DevicesAndSeeds, DramFuzzTest,
    ::testing::Combine(::testing::Values(0, 1),
                       ::testing::Values(41ULL, 43ULL)));

TEST(DramThroughput, HbmSustainsHigherRandomBandwidth)
{
    // Saturating both devices with the same random demand, HBM must
    // finish markedly earlier (more channels, faster bursts).
    DramMemory ddr(ddr3Config());
    DramMemory hbm(hbmConfig());
    Rng rng(99);
    Cycle ddr_done = 0, hbm_done = 0;
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.nextRange(1 << 25) / 64 * 64;
        ddr_done = std::max(ddr_done, ddr.access(0, addr, false));
        hbm_done = std::max(hbm_done, hbm.access(0, addr, false));
    }
    EXPECT_LT(hbm_done * 3, ddr_done);
}

} // namespace
} // namespace ramp
