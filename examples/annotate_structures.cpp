/**
 * @file
 * Program-annotation walkthrough (paper Section 7).
 *
 * Shows the workflow a developer (or profile-guided compiler pass)
 * follows to pin hot & low-risk data structures in HBM:
 *   1. profile the program's structures (hotness density + AVF),
 *   2. inspect the ranked annotation candidates,
 *   3. apply the chosen annotations (loader pins the pages),
 *   4. verify pinned pages survive a reliability-aware migration
 *      scheme running on top.
 */

#include <exception>
#include <iostream>

#include "common/table.hh"
#include "hma/experiment.hh"

using namespace ramp;

int
main(int argc, char **argv)
try {
    const std::string program = argc > 1 ? argv[1] : "xsbench";
    const WorkloadData data =
        prepareWorkload(homogeneousWorkload(program));
    const SystemConfig config = SystemConfig::scaledDefault();

    // 1. Profile pass.
    const SimResult base = runDdrOnly(config, data);

    // 2. Structure-level view: what would a profiler report?
    const auto structures =
        profileStructures(data.layout, base.profile);
    TextTable view({"structure", "pages (16 copies)", "accesses/page",
                    "avg AVF", "verdict"});
    const double mean_avf = base.profile.meanAvf();
    for (const auto &entry : structures) {
        const bool low_risk = entry.avgAvf <= mean_avf;
        view.addRow({entry.structure, TextTable::num(entry.pages),
                     TextTable::num(entry.hotnessPerPage(), 1),
                     TextTable::percent(entry.avgAvf),
                     low_risk ? "annotation candidate"
                              : "high risk - leave in DDR"});
    }
    view.print(std::cout, program + ": structure profile");

    // 3. Selection: fill the HBM with the densest low-risk
    //    structures (what the pragma/attribute list would contain).
    const auto selection =
        annotationsFor(data, base.profile, config.hbmPages());
    std::cout << "\nannotations chosen (" << selection.count()
              << "):\n";
    for (const auto &annotation : selection.annotations)
        std::cout << "  ramp::pin(\"" << annotation.structure
                  << "\")  // " << annotation.pages << " pages\n";

    // 4. Run with pinned placement, then with FC migration layered
    //    on top: pinned pages are immune to migration (Section 7).
    const auto pinned = runAnnotated(config, data, base.profile);
    const auto perf = runStaticPolicy(
        config, data, StaticPolicy::PerfFocused, base.profile);

    auto engine = makeEngine(DynamicScheme::FcReliability, config);
    HmaSystem system(config);
    auto hybrid = system.run(
        data.traces,
        buildAnnotatedPlacement(data.layout, selection,
                                config.hbmPages()),
        engine.get());
    hybrid.label = "annotated + fc-migration";

    TextTable table({"configuration", "IPC vs perf-focused",
                     "SER vs DDR-only"});
    auto row = [&](const SimResult &result) {
        table.addRow({result.label,
                      TextTable::ratio(result.ipc / perf.ipc),
                      TextTable::ratio(result.ser / base.ser, 1)});
    };
    row(perf);
    row(pinned);
    row(hybrid);
    std::cout << "\n";
    table.print(std::cout, "annotation outcomes");
    return 0;
} catch (const std::exception &error) {
    std::cerr << "annotate_structures: " << error.what() << "\n";
    return 1;
}
