/**
 * @file
 * Dynamic migration tour (paper Section 6).
 *
 * Runs a workload that needs no prior profiling through the three
 * dynamic schemes — performance-focused, reliability-aware Full
 * Counters, and Cross Counters — and reports performance,
 * reliability, migration volume, and tracking-hardware cost side by
 * side, including an interval sensitivity check (Figure 13).
 */

#include <exception>
#include <iostream>

#include "common/table.hh"
#include "hma/experiment.hh"

using namespace ramp;

int
main(int argc, char **argv)
try {
    const std::string name = argc > 1 ? argv[1] : "soplex";
    const WorkloadSpec spec =
        name.rfind("mix", 0) == 0 ? mixWorkload(name)
                                  : homogeneousWorkload(name);
    const WorkloadData data = prepareWorkload(spec);
    const SystemConfig config = SystemConfig::scaledDefault();

    // The profiling pass here is only used for the cold-start
    // initial placement; the engines themselves are profile-free.
    const SimResult base = runDdrOnly(config, data);

    // Paper-scale page populations for the hardware cost column.
    const std::uint64_t paper_total = (17ULL << 30) / pageSize;
    const std::uint64_t paper_hbm = (1ULL << 30) / pageSize;

    TextTable table({"scheme", "IPC vs DDR-only", "SER vs DDR-only",
                     "pages moved", "tracking HW"});
    for (const auto scheme :
         {DynamicScheme::PerfFocused, DynamicScheme::FcReliability,
          DynamicScheme::CrossCounter}) {
        const auto result =
            runDynamic(config, data, scheme, base.profile);
        const auto engine = makeEngine(scheme, config);
        table.addRow(
            {result.label, TextTable::ratio(result.ipc / base.ipc),
             TextTable::ratio(result.ser / base.ser, 1),
             TextTable::num(result.migratedPages),
             TextTable::num(
                 static_cast<double>(engine->hardwareCostBytes(
                     paper_total, paper_hbm)) /
                     1024.0,
                 0) +
                 " KB"});
    }
    table.print(std::cout, "dynamic schemes on " + spec.name);

    // Interval sensitivity (Figure 13 in miniature).
    TextTable sweep({"FC interval (cycles)", "perf-mig IPC",
                     "fc-mig IPC"});
    for (const Cycle interval :
         {1'600'000ULL, 3'200'000ULL, 6'400'000ULL}) {
        SystemConfig swept = config;
        swept.fcIntervalCycles = interval;
        const auto perf = runDynamic(
            swept, data, DynamicScheme::PerfFocused, base.profile);
        const auto fc = runDynamic(
            swept, data, DynamicScheme::FcReliability, base.profile);
        sweep.addRow({TextTable::num(
                          static_cast<std::uint64_t>(interval)),
                      TextTable::num(perf.ipc, 2),
                      TextTable::num(fc.ipc, 2)});
    }
    std::cout << "\n";
    sweep.print(std::cout, "interval sensitivity");
    return 0;
} catch (const std::exception &error) {
    std::cerr << "migration_tour: " << error.what() << "\n";
    return 1;
}
