/**
 * @file
 * Quickstart: profile a workload, compare placements, print the
 * performance/reliability trade-off.
 *
 * Demonstrates the core RAMP workflow in ~50 lines:
 *   1. pick a workload and generate its traces,
 *   2. run the DDR-only profiling pass (hotness + AVF per page),
 *   3. replay under performance-focused and reliability-aware
 *      placements,
 *   4. compare IPC and soft-error rate against the baselines.
 */

#include <exception>
#include <iostream>

#include "common/table.hh"
#include "hma/experiment.hh"

using namespace ramp;

int
main(int argc, char **argv)
try {
    const std::string workload = argc > 1 ? argv[1] : "mix1";

    // 1. Build the workload (16 cores, Table 2 mixes supported).
    const WorkloadSpec spec =
        workload.rfind("mix", 0) == 0 ? mixWorkload(workload)
                                      : homogeneousWorkload(workload);
    const WorkloadData data = prepareWorkload(spec);

    // 2. Profiling pass: everything in DDR, measure hotness and AVF.
    const SystemConfig config = SystemConfig::scaledDefault();
    const SimResult baseline = runDdrOnly(config, data);
    const PageProfile &profile = baseline.profile;

    std::cout << "workload " << spec.name << ": "
              << profile.footprintPages() << " pages touched, "
              << "memory AVF "
              << TextTable::percent(baseline.memoryAvf) << ", MPKI "
              << TextTable::num(baseline.mpki, 1) << "\n\n";

    // 3. Policy passes over the same traces.
    TextTable table({"placement", "IPC", "IPC vs DDR-only",
                     "SER vs DDR-only"});
    auto report = [&](const SimResult &result) {
        table.addRow({result.label, TextTable::num(result.ipc, 2),
                      TextTable::ratio(result.ipc / baseline.ipc),
                      TextTable::ratio(result.ser / baseline.ser)});
    };

    report(baseline);
    for (const StaticPolicy policy :
         {StaticPolicy::PerfFocused, StaticPolicy::Balanced,
          StaticPolicy::Wr2Ratio}) {
        report(runStaticPolicy(config, data, policy, profile));
    }
    report(runDynamic(config, data, DynamicScheme::FcReliability,
                      profile));

    // 4. The trade-off at a glance.
    table.print(std::cout, "RAMP quickstart: " + spec.name);
    return 0;
} catch (const std::exception &error) {
    std::cerr << "quickstart: " << error.what() << "\n";
    return 1;
}
