/**
 * @file
 * Datacenter-mix scenario: build a custom 16-core workload mix,
 * study its hotness-risk structure, and pick a placement.
 *
 * Models the paper's Section 4 workflow for an operator consolidating
 * heterogeneous tenants onto one HMA node:
 *   1. compose a custom mix (any registry programs, 16 cores),
 *   2. profile it on DDR only and inspect the Figure 4 quadrants,
 *   3. compare the placement options the paper offers — the four
 *      static candidates fan out across the runner thread pool,
 *   4. report the per-mix recommendation.
 */

#include <iostream>

#include "common/table.hh"
#include "hma/experiment.hh"
#include "placement/quadrant.hh"
#include "runner/harness.hh"

using namespace ramp;

int
main(int argc, char **argv)
{
    return runner::benchMain("datacenter_mix", [&] {
        runner::Harness harness("datacenter_mix", argc, argv);
        const SystemConfig &config = harness.config();

        // 1. A custom consolidation mix: latency-sensitive services
        //    (gcc, omnetpp) sharing the node with HPC batch jobs.
        WorkloadSpec spec;
        spec.name = "custom-consolidation";
        spec.coreBenchmarks = {"gcc",     "gcc",      "omnetpp",
                               "omnetpp", "sphinx",   "bzip",
                               "bzip",    "dealII",   "milc",
                               "milc",    "GemsFDTD", "GemsFDTD",
                               "lulesh",  "lulesh",   "xsbench",
                               "xsbench"};

        // 2. Profile pass (cached like any bench workload) and
        //    quadrant analysis.
        const auto wl = harness.profile(spec);
        const SimResult &base = wl->base;
        const auto quadrants = analyzeQuadrants(wl->profile());
        std::cout << "mix '" << spec.name << "': "
                  << wl->profile().footprintPages() << " pages, AVF "
                  << TextTable::percent(base.memoryAvf) << ", MPKI "
                  << TextTable::num(base.mpki, 1) << "\n"
                  << "hot & low-risk pages: "
                  << TextTable::percent(
                         quadrants.hotLowRiskFraction())
                  << " of footprint (the placement opportunity)\n\n";

        // 3. Candidate placements, as checkpointable passes: the
        //    four static candidates plus the dynamic option for
        //    tenants the operator cannot profile.
        const std::vector<StaticPolicy> policies = {
            StaticPolicy::PerfFocused, StaticPolicy::Balanced,
            StaticPolicy::WrRatio, StaticPolicy::Wr2Ratio};
        const std::vector<std::string> labels = {
            "perf-focused", "balanced", "wr-ratio", "wr2-ratio",
            "fc-migration"};
        std::vector<runner::PassDesc> descs;
        for (const auto &label : labels)
            descs.push_back(
                {spec.name, runner::Harness::passKey(wl, label)});
        const auto outcomes = harness.runPasses(
            descs, [&](std::size_t i) {
                if (i < policies.size())
                    return runStaticPolicy(config, wl->data,
                                           policies[i],
                                           wl->profile());
                return runDynamic(config, wl->data,
                                  DynamicScheme::FcReliability,
                                  wl->profile());
            });

        TextTable table({"placement", "IPC vs DDR-only",
                         "SER vs DDR-only", "HBM traffic share"});
        SimResult best_balanced{};
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (!outcomes[i].ok()) {
                table.addRow(
                    {labels[i],
                     runner::passStatusName(outcomes[i].status), "-",
                     "-"});
                continue;
            }
            const auto &result = outcomes[i].result;
            if (i < policies.size() &&
                policies[i] == StaticPolicy::Wr2Ratio)
                best_balanced = result;
            table.addRow(
                {result.label, TextTable::ratio(result.ipc / base.ipc),
                 TextTable::ratio(result.ser / base.ser, 1),
                 TextTable::percent(result.hbmAccessFraction)});
        }
        table.print(std::cout,
                    "placement options for " + spec.name);

        // 4. Recommendation: the Wr^2 heuristic balances both axes
        //    without needing AVF oracles (Section 5.4.2).
        if (best_balanced.instructions != 0)
            std::cout << "\nrecommended: wr2-ratio placement ("
                      << TextTable::ratio(best_balanced.ipc /
                                          base.ipc)
                      << " IPC at "
                      << TextTable::ratio(best_balanced.ser /
                                              base.ser,
                                          1)
                      << " SER vs DDR-only)\n";
        return harness.finish();
    });
}
