/**
 * @file
 * ramp_cli — command-line explorer for the RAMP library.
 *
 * Subcommands:
 *   workloads                      list the registered programs/mixes
 *   profile   <workload>           DDR-only profile: AVF, MPKI,
 *                                  quadrants, per-structure stats
 *   run       <workload> <policy>  one placement/migration pass
 *   sweep     <workload>           hot-fraction frontier (Fig 1 style)
 *   faultsim  [stacked-factor]     FaultSim campaign for both memories
 *   trace     <workload> <file>    generate + save traces, then verify
 *
 * Policies: ddr-only perf rel balanced wr wr2 annotated
 *           perf-mig fc-mig cc-mig
 *
 * Runner flags (--jobs, --json, --cache-dir, --checkpoint,
 * --pass-timeout) may appear anywhere; with --cache-dir the profile
 * pass is shared with the bench binaries, so `ramp_cli profile mix1`
 * after a bench run is free, and with --checkpoint an interrupted
 * `sweep` resumes from its journal.
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "hma/experiment.hh"
#include "placement/quadrant.hh"
#include "reliability/faultsim.hh"
#include "runner/harness.hh"

using namespace ramp;
using runner::Harness;

namespace
{

WorkloadSpec
specFor(const std::string &name)
{
    return name.rfind("mix", 0) == 0 ? mixWorkload(name)
                                     : homogeneousWorkload(name);
}

int
cmdWorkloads()
{
    TextTable table({"workload", "kind", "MPKI", "footprint pages"});
    for (const auto &spec : standardWorkloads()) {
        const auto layout = buildLayout(spec);
        const bool mix = spec.name.rfind("mix", 0) == 0;
        double mpki = 0;
        for (const auto &bench : spec.coreBenchmarks)
            mpki += benchmarkProfile(bench).mpki;
        table.addRow({spec.name, mix ? "mix" : "homogeneous",
                      TextTable::num(mpki / workloadCores, 1),
                      TextTable::num(layout.totalPages)});
    }
    table.print(std::cout, "registered workloads");
    return 0;
}

int
cmdProfile(Harness &harness, const std::string &workload)
{
    const auto wl = harness.profile(specFor(workload));
    const auto quadrants = analyzeQuadrants(wl->profile());

    std::cout << workload << ": AVF "
              << TextTable::percent(wl->base.memoryAvf) << ", MPKI "
              << TextTable::num(wl->base.mpki, 1) << ", IPC "
              << TextTable::num(wl->base.ipc, 2) << ", footprint "
              << wl->profile().footprintPages() << " pages\n"
              << "quadrants: hot&low "
              << TextTable::percent(quadrants.hotLowRiskFraction())
              << "\n\n";

    TextTable table({"program", "structure", "pages", "acc/page",
                     "avg AVF"});
    const auto structures =
        profileStructures(wl->data.layout, wl->profile());
    for (const auto &entry : structures)
        table.addRow({entry.benchmark, entry.structure,
                      TextTable::num(entry.pages),
                      TextTable::num(entry.hotnessPerPage(), 1),
                      TextTable::percent(entry.avgAvf)});
    table.print(std::cout, "structure profile");
    return 0;
}

int
cmdRun(Harness &harness, const std::string &workload,
       const std::string &policy)
{
    const auto wl = harness.profile(specFor(workload));
    const SystemConfig &config = harness.config();
    const SimResult &base = wl->base;

    SimResult result;
    if (policy == "ddr-only")
        result = base;
    else if (policy == "perf")
        result = runStaticPolicy(config, wl->data,
                                 StaticPolicy::PerfFocused,
                                 wl->profile());
    else if (policy == "rel")
        result = runStaticPolicy(config, wl->data,
                                 StaticPolicy::ReliabilityFocused,
                                 wl->profile());
    else if (policy == "balanced")
        result = runStaticPolicy(config, wl->data,
                                 StaticPolicy::Balanced,
                                 wl->profile());
    else if (policy == "wr")
        result = runStaticPolicy(config, wl->data,
                                 StaticPolicy::WrRatio,
                                 wl->profile());
    else if (policy == "wr2")
        result = runStaticPolicy(config, wl->data,
                                 StaticPolicy::Wr2Ratio,
                                 wl->profile());
    else if (policy == "annotated")
        result = runAnnotated(config, wl->data, wl->profile());
    else if (policy == "perf-mig")
        result = runDynamic(config, wl->data,
                            DynamicScheme::PerfFocused,
                            wl->profile());
    else if (policy == "fc-mig")
        result = runDynamic(config, wl->data,
                            DynamicScheme::FcReliability,
                            wl->profile());
    else if (policy == "cc-mig")
        result = runDynamic(config, wl->data,
                            DynamicScheme::CrossCounter,
                            wl->profile());
    else {
        std::cerr << "unknown policy: " << policy << "\n";
        return 1;
    }
    if (policy != "ddr-only")
        harness.record(workload, result);

    TextTable table({"metric", "value"});
    table.addRow({"IPC", TextTable::num(result.ipc, 3)});
    table.addRow({"IPC vs DDR-only",
                  TextTable::ratio(result.ipc / base.ipc)});
    table.addRow({"SER vs DDR-only",
                  TextTable::ratio(result.ser / base.ser, 1)});
    table.addRow({"HBM traffic share",
                  TextTable::percent(result.hbmAccessFraction)});
    table.addRow({"avg read latency (cycles)",
                  TextTable::num(result.avgReadLatency, 0)});
    table.addRow({"pages migrated",
                  TextTable::num(result.migratedPages)});
    table.print(std::cout, workload + " / " + result.label);
    return 0;
}

int
cmdSweep(Harness &harness, const std::string &workload)
{
    const auto wl = harness.profile(specFor(workload));
    const SystemConfig &config = harness.config();

    const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75,
                                           1.0};
    std::vector<runner::PassDesc> descs;
    for (const double fraction : fractions)
        descs.push_back(
            {workload,
             Harness::passKey(wl, "hot@" +
                                      TextTable::num(fraction, 2))});
    const auto outcomes = harness.runPasses(
        descs, [&](std::size_t i) {
            SimResult result = runHotFraction(
                config, wl->data, wl->profile(), fractions[i]);
            result.label += "@" + TextTable::num(fractions[i], 2);
            return result;
        });

    TextTable table({"hot fraction", "IPC vs DDR-only",
                     "SER vs DDR-only"});
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        if (!outcomes[i].ok()) {
            table.addRow(
                {TextTable::num(fractions[i], 2),
                 runner::passStatusName(outcomes[i].status), "-"});
            continue;
        }
        const auto &result = outcomes[i].result;
        table.addRow(
            {TextTable::num(fractions[i], 2),
             TextTable::ratio(result.ipc / wl->base.ipc),
             TextTable::ratio(result.ser / wl->base.ser, 1)});
    }
    table.print(std::cout, workload + ": hot-fraction frontier");
    return 0;
}

int
cmdFaultsim(runner::ThreadPool &pool, double stacked_factor)
{
    TextTable table({"memory", "ECC", "P(UE)", "FIT_unc/GB"});
    const auto hbm =
        FaultSim(FaultSimConfig::hbmSecDed(stacked_factor))
            .run(100000, 42, &pool);
    auto ddr_config = FaultSimConfig::ddrChipKill();
    ddr_config.fitBoost = 30.0;
    const auto ddr = FaultSim(ddr_config).run(1000000, 42, &pool);
    table.addRow({"die-stacked", "SEC-DED",
                  TextTable::num(hbm.pUncorrected, 8),
                  TextTable::num(hbm.fitUncorrectedPerGB, 3)});
    table.addRow({"off-package", "ChipKill",
                  TextTable::num(ddr.pUncorrected, 8),
                  TextTable::num(ddr.fitUncorrectedPerGB, 5)});
    table.print(std::cout, "FaultSim campaign");
    return 0;
}

int
cmdTrace(const std::string &workload, const std::string &path)
{
    const auto data = prepareWorkload(specFor(workload));
    writeWorkloadTrace(path, data.traces);
    const auto restored = readWorkloadTrace(path);
    const auto stats = computeStats(restored);
    std::cout << "wrote " << stats.requests << " requests ("
              << restored.size() << " cores) to " << path
              << "; verified round-trip, MPKI "
              << TextTable::num(stats.mpki(), 1) << "\n";
    return 0;
}

void
usage()
{
    std::cout
        << "usage: ramp_cli [flags] <command> [...]\n"
        << "  workloads | profile <wl> | run <wl> <policy> |\n"
        << "  sweep <wl> | faultsim [factor] | trace <wl> <file>\n"
        << runner::RunnerOptions::flagsHelp();
}

} // namespace

int
main(int argc, char **argv)
{
    return runner::benchMain("ramp_cli", [&] {
        Harness harness("ramp_cli", argc, argv);
        const auto &args = harness.options().positional;
        if (args.empty()) {
            usage();
            return 1;
        }

        const std::string &command = args[0];
        int rc = -1;
        if (command == "workloads")
            rc = cmdWorkloads();
        else if (command == "profile" && args.size() >= 2)
            rc = cmdProfile(harness, args[1]);
        else if (command == "run" && args.size() >= 3)
            rc = cmdRun(harness, args[1], args[2]);
        else if (command == "sweep" && args.size() >= 2)
            rc = cmdSweep(harness, args[1]);
        else if (command == "faultsim")
            rc = cmdFaultsim(harness.pool(),
                             args.size() >= 2
                                 ? std::atof(args[1].c_str())
                                 : 3.0);
        else if (command == "trace" && args.size() >= 3)
            rc = cmdTrace(args[1], args[2]);

        if (rc < 0) {
            usage();
            return 1;
        }
        const int finish_rc = harness.finish();
        return rc != 0 ? rc : finish_rc;
    });
}
