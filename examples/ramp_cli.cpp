/**
 * @file
 * ramp_cli — command-line explorer for the RAMP library.
 *
 * Subcommands:
 *   workloads                      list the registered programs/mixes
 *   profile   <workload>           DDR-only profile: AVF, MPKI,
 *                                  quadrants, per-structure stats
 *   run       <workload> <policy>  one placement/migration pass
 *   sweep     <workload>           hot-fraction frontier (Fig 1 style)
 *   faultsim  [stacked-factor]     FaultSim campaign for both memories
 *   trace     <workload> <file>    generate + save traces, then verify
 *
 * Policies: ddr-only perf rel balanced wr wr2 annotated
 *           perf-mig fc-mig cc-mig
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "hma/experiment.hh"
#include "placement/quadrant.hh"
#include "reliability/faultsim.hh"

using namespace ramp;

namespace
{

WorkloadSpec
specFor(const std::string &name)
{
    return name.rfind("mix", 0) == 0 ? mixWorkload(name)
                                     : homogeneousWorkload(name);
}

int
cmdWorkloads()
{
    TextTable table({"workload", "kind", "MPKI", "footprint pages"});
    for (const auto &spec : standardWorkloads()) {
        const auto layout = buildLayout(spec);
        const bool mix = spec.name.rfind("mix", 0) == 0;
        double mpki = 0;
        for (const auto &bench : spec.coreBenchmarks)
            mpki += benchmarkProfile(bench).mpki;
        table.addRow({spec.name, mix ? "mix" : "homogeneous",
                      TextTable::num(mpki / workloadCores, 1),
                      TextTable::num(layout.totalPages)});
    }
    table.print(std::cout, "registered workloads");
    return 0;
}

int
cmdProfile(const std::string &workload)
{
    const auto data = prepareWorkload(specFor(workload));
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto base = runDdrOnly(config, data);
    const auto quadrants = analyzeQuadrants(base.profile);

    std::cout << workload << ": AVF "
              << TextTable::percent(base.memoryAvf) << ", MPKI "
              << TextTable::num(base.mpki, 1) << ", IPC "
              << TextTable::num(base.ipc, 2) << ", footprint "
              << base.profile.footprintPages() << " pages\n"
              << "quadrants: hot&low "
              << TextTable::percent(quadrants.hotLowRiskFraction())
              << "\n\n";

    TextTable table({"program", "structure", "pages", "acc/page",
                     "avg AVF"});
    const auto structures =
        profileStructures(data.layout, base.profile);
    for (const auto &entry : structures)
        table.addRow({entry.benchmark, entry.structure,
                      TextTable::num(entry.pages),
                      TextTable::num(entry.hotnessPerPage(), 1),
                      TextTable::percent(entry.avgAvf)});
    table.print(std::cout, "structure profile");
    return 0;
}

int
cmdRun(const std::string &workload, const std::string &policy)
{
    const auto data = prepareWorkload(specFor(workload));
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto base = runDdrOnly(config, data);

    SimResult result;
    if (policy == "ddr-only")
        result = base;
    else if (policy == "perf")
        result = runStaticPolicy(config, data,
                                 StaticPolicy::PerfFocused,
                                 base.profile);
    else if (policy == "rel")
        result = runStaticPolicy(config, data,
                                 StaticPolicy::ReliabilityFocused,
                                 base.profile);
    else if (policy == "balanced")
        result = runStaticPolicy(config, data, StaticPolicy::Balanced,
                                 base.profile);
    else if (policy == "wr")
        result = runStaticPolicy(config, data, StaticPolicy::WrRatio,
                                 base.profile);
    else if (policy == "wr2")
        result = runStaticPolicy(config, data, StaticPolicy::Wr2Ratio,
                                 base.profile);
    else if (policy == "annotated")
        result = runAnnotated(config, data, base.profile);
    else if (policy == "perf-mig")
        result = runDynamic(config, data, DynamicScheme::PerfFocused,
                            base.profile);
    else if (policy == "fc-mig")
        result = runDynamic(config, data,
                            DynamicScheme::FcReliability,
                            base.profile);
    else if (policy == "cc-mig")
        result = runDynamic(config, data, DynamicScheme::CrossCounter,
                            base.profile);
    else {
        std::cerr << "unknown policy: " << policy << "\n";
        return 1;
    }

    TextTable table({"metric", "value"});
    table.addRow({"IPC", TextTable::num(result.ipc, 3)});
    table.addRow({"IPC vs DDR-only",
                  TextTable::ratio(result.ipc / base.ipc)});
    table.addRow({"SER vs DDR-only",
                  TextTable::ratio(result.ser / base.ser, 1)});
    table.addRow({"HBM traffic share",
                  TextTable::percent(result.hbmAccessFraction)});
    table.addRow({"avg read latency (cycles)",
                  TextTable::num(result.avgReadLatency, 0)});
    table.addRow({"pages migrated",
                  TextTable::num(result.migratedPages)});
    table.print(std::cout, workload + " / " + result.label);
    return 0;
}

int
cmdSweep(const std::string &workload)
{
    const auto data = prepareWorkload(specFor(workload));
    const SystemConfig config = SystemConfig::scaledDefault();
    const auto base = runDdrOnly(config, data);

    TextTable table({"hot fraction", "IPC vs DDR-only",
                     "SER vs DDR-only"});
    for (const double fraction : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        const auto result =
            runHotFraction(config, data, base.profile, fraction);
        table.addRow({TextTable::num(fraction, 2),
                      TextTable::ratio(result.ipc / base.ipc),
                      TextTable::ratio(result.ser / base.ser, 1)});
    }
    table.print(std::cout, workload + ": hot-fraction frontier");
    return 0;
}

int
cmdFaultsim(double stacked_factor)
{
    TextTable table({"memory", "ECC", "P(UE)", "FIT_unc/GB"});
    const auto hbm =
        FaultSim(FaultSimConfig::hbmSecDed(stacked_factor))
            .run(100000, 42);
    auto ddr_config = FaultSimConfig::ddrChipKill();
    ddr_config.fitBoost = 30.0;
    const auto ddr = FaultSim(ddr_config).run(1000000, 42);
    table.addRow({"die-stacked", "SEC-DED",
                  TextTable::num(hbm.pUncorrected, 8),
                  TextTable::num(hbm.fitUncorrectedPerGB, 3)});
    table.addRow({"off-package", "ChipKill",
                  TextTable::num(ddr.pUncorrected, 8),
                  TextTable::num(ddr.fitUncorrectedPerGB, 5)});
    table.print(std::cout, "FaultSim campaign");
    return 0;
}

int
cmdTrace(const std::string &workload, const std::string &path)
{
    const auto data = prepareWorkload(specFor(workload));
    writeWorkloadTrace(path, data.traces);
    const auto restored = readWorkloadTrace(path);
    const auto stats = computeStats(restored);
    std::cout << "wrote " << stats.requests << " requests ("
              << restored.size() << " cores) to " << path
              << "; verified round-trip, MPKI "
              << TextTable::num(stats.mpki(), 1) << "\n";
    return 0;
}

void
usage()
{
    std::cout
        << "usage: ramp_cli <command> [...]\n"
        << "  workloads | profile <wl> | run <wl> <policy> |\n"
        << "  sweep <wl> | faultsim [factor] | trace <wl> <file>\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    if (command == "workloads")
        return cmdWorkloads();
    if (command == "profile" && argc >= 3)
        return cmdProfile(argv[2]);
    if (command == "run" && argc >= 4)
        return cmdRun(argv[2], argv[3]);
    if (command == "sweep" && argc >= 3)
        return cmdSweep(argv[2]);
    if (command == "faultsim")
        return cmdFaultsim(argc >= 3 ? std::atof(argv[2]) : 3.0);
    if (command == "trace" && argc >= 4)
        return cmdTrace(argv[2], argv[3]);
    usage();
    return 1;
}
