file(REMOVE_RECURSE
  "CMakeFiles/ramp_trace.dir/generator.cc.o"
  "CMakeFiles/ramp_trace.dir/generator.cc.o.d"
  "CMakeFiles/ramp_trace.dir/trace.cc.o"
  "CMakeFiles/ramp_trace.dir/trace.cc.o.d"
  "CMakeFiles/ramp_trace.dir/workload.cc.o"
  "CMakeFiles/ramp_trace.dir/workload.cc.o.d"
  "libramp_trace.a"
  "libramp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
