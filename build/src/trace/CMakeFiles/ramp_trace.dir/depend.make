# Empty dependencies file for ramp_trace.
# This may be replaced when dependencies are built.
