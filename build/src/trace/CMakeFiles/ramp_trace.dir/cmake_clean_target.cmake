file(REMOVE_RECURSE
  "libramp_trace.a"
)
