# Empty dependencies file for ramp_dram.
# This may be replaced when dependencies are built.
