file(REMOVE_RECURSE
  "libramp_dram.a"
)
