file(REMOVE_RECURSE
  "CMakeFiles/ramp_dram.dir/config.cc.o"
  "CMakeFiles/ramp_dram.dir/config.cc.o.d"
  "CMakeFiles/ramp_dram.dir/memory.cc.o"
  "CMakeFiles/ramp_dram.dir/memory.cc.o.d"
  "libramp_dram.a"
  "libramp_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
