# Empty dependencies file for ramp_common.
# This may be replaced when dependencies are built.
