file(REMOVE_RECURSE
  "libramp_common.a"
)
