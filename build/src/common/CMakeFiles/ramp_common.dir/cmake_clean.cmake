file(REMOVE_RECURSE
  "CMakeFiles/ramp_common.dir/logging.cc.o"
  "CMakeFiles/ramp_common.dir/logging.cc.o.d"
  "CMakeFiles/ramp_common.dir/rng.cc.o"
  "CMakeFiles/ramp_common.dir/rng.cc.o.d"
  "CMakeFiles/ramp_common.dir/stats.cc.o"
  "CMakeFiles/ramp_common.dir/stats.cc.o.d"
  "CMakeFiles/ramp_common.dir/table.cc.o"
  "CMakeFiles/ramp_common.dir/table.cc.o.d"
  "libramp_common.a"
  "libramp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
