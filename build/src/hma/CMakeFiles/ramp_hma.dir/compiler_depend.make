# Empty compiler generated dependencies file for ramp_hma.
# This may be replaced when dependencies are built.
