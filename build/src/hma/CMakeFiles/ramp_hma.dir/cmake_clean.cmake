file(REMOVE_RECURSE
  "CMakeFiles/ramp_hma.dir/core_model.cc.o"
  "CMakeFiles/ramp_hma.dir/core_model.cc.o.d"
  "CMakeFiles/ramp_hma.dir/experiment.cc.o"
  "CMakeFiles/ramp_hma.dir/experiment.cc.o.d"
  "CMakeFiles/ramp_hma.dir/system.cc.o"
  "CMakeFiles/ramp_hma.dir/system.cc.o.d"
  "libramp_hma.a"
  "libramp_hma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_hma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
