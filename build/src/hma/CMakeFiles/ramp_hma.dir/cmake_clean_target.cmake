file(REMOVE_RECURSE
  "libramp_hma.a"
)
