file(REMOVE_RECURSE
  "CMakeFiles/ramp_cache.dir/cache.cc.o"
  "CMakeFiles/ramp_cache.dir/cache.cc.o.d"
  "CMakeFiles/ramp_cache.dir/filter.cc.o"
  "CMakeFiles/ramp_cache.dir/filter.cc.o.d"
  "CMakeFiles/ramp_cache.dir/hierarchy.cc.o"
  "CMakeFiles/ramp_cache.dir/hierarchy.cc.o.d"
  "libramp_cache.a"
  "libramp_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
