# Empty dependencies file for ramp_cache.
# This may be replaced when dependencies are built.
