file(REMOVE_RECURSE
  "libramp_cache.a"
)
