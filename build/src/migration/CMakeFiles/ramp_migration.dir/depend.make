# Empty dependencies file for ramp_migration.
# This may be replaced when dependencies are built.
