
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/migration/counters.cc" "src/migration/CMakeFiles/ramp_migration.dir/counters.cc.o" "gcc" "src/migration/CMakeFiles/ramp_migration.dir/counters.cc.o.d"
  "/root/repo/src/migration/engine.cc" "src/migration/CMakeFiles/ramp_migration.dir/engine.cc.o" "gcc" "src/migration/CMakeFiles/ramp_migration.dir/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ramp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ramp_placement.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
