file(REMOVE_RECURSE
  "CMakeFiles/ramp_migration.dir/counters.cc.o"
  "CMakeFiles/ramp_migration.dir/counters.cc.o.d"
  "CMakeFiles/ramp_migration.dir/engine.cc.o"
  "CMakeFiles/ramp_migration.dir/engine.cc.o.d"
  "libramp_migration.a"
  "libramp_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
