file(REMOVE_RECURSE
  "libramp_migration.a"
)
