# Empty compiler generated dependencies file for ramp_annotation.
# This may be replaced when dependencies are built.
