file(REMOVE_RECURSE
  "libramp_annotation.a"
)
