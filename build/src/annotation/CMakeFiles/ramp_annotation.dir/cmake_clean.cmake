file(REMOVE_RECURSE
  "CMakeFiles/ramp_annotation.dir/annotation.cc.o"
  "CMakeFiles/ramp_annotation.dir/annotation.cc.o.d"
  "libramp_annotation.a"
  "libramp_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
