file(REMOVE_RECURSE
  "CMakeFiles/ramp_placement.dir/map.cc.o"
  "CMakeFiles/ramp_placement.dir/map.cc.o.d"
  "CMakeFiles/ramp_placement.dir/policies.cc.o"
  "CMakeFiles/ramp_placement.dir/policies.cc.o.d"
  "CMakeFiles/ramp_placement.dir/profile.cc.o"
  "CMakeFiles/ramp_placement.dir/profile.cc.o.d"
  "CMakeFiles/ramp_placement.dir/quadrant.cc.o"
  "CMakeFiles/ramp_placement.dir/quadrant.cc.o.d"
  "libramp_placement.a"
  "libramp_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
