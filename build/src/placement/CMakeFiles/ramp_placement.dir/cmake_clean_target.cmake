file(REMOVE_RECURSE
  "libramp_placement.a"
)
