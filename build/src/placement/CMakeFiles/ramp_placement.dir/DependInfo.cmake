
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/map.cc" "src/placement/CMakeFiles/ramp_placement.dir/map.cc.o" "gcc" "src/placement/CMakeFiles/ramp_placement.dir/map.cc.o.d"
  "/root/repo/src/placement/policies.cc" "src/placement/CMakeFiles/ramp_placement.dir/policies.cc.o" "gcc" "src/placement/CMakeFiles/ramp_placement.dir/policies.cc.o.d"
  "/root/repo/src/placement/profile.cc" "src/placement/CMakeFiles/ramp_placement.dir/profile.cc.o" "gcc" "src/placement/CMakeFiles/ramp_placement.dir/profile.cc.o.d"
  "/root/repo/src/placement/quadrant.cc" "src/placement/CMakeFiles/ramp_placement.dir/quadrant.cc.o" "gcc" "src/placement/CMakeFiles/ramp_placement.dir/quadrant.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ramp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
