# Empty compiler generated dependencies file for ramp_placement.
# This may be replaced when dependencies are built.
