# Empty dependencies file for ramp_reliability.
# This may be replaced when dependencies are built.
