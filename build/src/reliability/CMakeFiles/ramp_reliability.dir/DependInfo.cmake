
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reliability/avf.cc" "src/reliability/CMakeFiles/ramp_reliability.dir/avf.cc.o" "gcc" "src/reliability/CMakeFiles/ramp_reliability.dir/avf.cc.o.d"
  "/root/repo/src/reliability/ecc.cc" "src/reliability/CMakeFiles/ramp_reliability.dir/ecc.cc.o" "gcc" "src/reliability/CMakeFiles/ramp_reliability.dir/ecc.cc.o.d"
  "/root/repo/src/reliability/fault.cc" "src/reliability/CMakeFiles/ramp_reliability.dir/fault.cc.o" "gcc" "src/reliability/CMakeFiles/ramp_reliability.dir/fault.cc.o.d"
  "/root/repo/src/reliability/faultsim.cc" "src/reliability/CMakeFiles/ramp_reliability.dir/faultsim.cc.o" "gcc" "src/reliability/CMakeFiles/ramp_reliability.dir/faultsim.cc.o.d"
  "/root/repo/src/reliability/fit.cc" "src/reliability/CMakeFiles/ramp_reliability.dir/fit.cc.o" "gcc" "src/reliability/CMakeFiles/ramp_reliability.dir/fit.cc.o.d"
  "/root/repo/src/reliability/ser.cc" "src/reliability/CMakeFiles/ramp_reliability.dir/ser.cc.o" "gcc" "src/reliability/CMakeFiles/ramp_reliability.dir/ser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ramp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
