file(REMOVE_RECURSE
  "libramp_reliability.a"
)
