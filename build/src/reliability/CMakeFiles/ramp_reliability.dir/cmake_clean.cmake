file(REMOVE_RECURSE
  "CMakeFiles/ramp_reliability.dir/avf.cc.o"
  "CMakeFiles/ramp_reliability.dir/avf.cc.o.d"
  "CMakeFiles/ramp_reliability.dir/ecc.cc.o"
  "CMakeFiles/ramp_reliability.dir/ecc.cc.o.d"
  "CMakeFiles/ramp_reliability.dir/fault.cc.o"
  "CMakeFiles/ramp_reliability.dir/fault.cc.o.d"
  "CMakeFiles/ramp_reliability.dir/faultsim.cc.o"
  "CMakeFiles/ramp_reliability.dir/faultsim.cc.o.d"
  "CMakeFiles/ramp_reliability.dir/fit.cc.o"
  "CMakeFiles/ramp_reliability.dir/fit.cc.o.d"
  "CMakeFiles/ramp_reliability.dir/ser.cc.o"
  "CMakeFiles/ramp_reliability.dir/ser.cc.o.d"
  "libramp_reliability.a"
  "libramp_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
