file(REMOVE_RECURSE
  "CMakeFiles/fig11_wr2_static.dir/fig11_wr2_static.cpp.o"
  "CMakeFiles/fig11_wr2_static.dir/fig11_wr2_static.cpp.o.d"
  "fig11_wr2_static"
  "fig11_wr2_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_wr2_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
