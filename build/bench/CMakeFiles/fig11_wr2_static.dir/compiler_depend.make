# Empty compiler generated dependencies file for fig11_wr2_static.
# This may be replaced when dependencies are built.
