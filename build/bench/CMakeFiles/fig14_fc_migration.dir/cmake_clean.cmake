file(REMOVE_RECURSE
  "CMakeFiles/fig14_fc_migration.dir/fig14_fc_migration.cpp.o"
  "CMakeFiles/fig14_fc_migration.dir/fig14_fc_migration.cpp.o.d"
  "fig14_fc_migration"
  "fig14_fc_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_fc_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
