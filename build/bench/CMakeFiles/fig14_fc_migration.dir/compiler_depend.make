# Empty compiler generated dependencies file for fig14_fc_migration.
# This may be replaced when dependencies are built.
