# Empty dependencies file for fig09_wr_corr.
# This may be replaced when dependencies are built.
