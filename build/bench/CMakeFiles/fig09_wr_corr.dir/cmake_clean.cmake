file(REMOVE_RECURSE
  "CMakeFiles/fig09_wr_corr.dir/fig09_wr_corr.cpp.o"
  "CMakeFiles/fig09_wr_corr.dir/fig09_wr_corr.cpp.o.d"
  "fig09_wr_corr"
  "fig09_wr_corr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_wr_corr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
