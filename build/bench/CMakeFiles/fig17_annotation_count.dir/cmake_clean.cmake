file(REMOVE_RECURSE
  "CMakeFiles/fig17_annotation_count.dir/fig17_annotation_count.cpp.o"
  "CMakeFiles/fig17_annotation_count.dir/fig17_annotation_count.cpp.o.d"
  "fig17_annotation_count"
  "fig17_annotation_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_annotation_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
