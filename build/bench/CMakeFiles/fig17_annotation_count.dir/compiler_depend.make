# Empty compiler generated dependencies file for fig17_annotation_count.
# This may be replaced when dependencies are built.
