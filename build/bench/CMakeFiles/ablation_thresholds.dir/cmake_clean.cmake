file(REMOVE_RECURSE
  "CMakeFiles/ablation_thresholds.dir/ablation_thresholds.cpp.o"
  "CMakeFiles/ablation_thresholds.dir/ablation_thresholds.cpp.o.d"
  "ablation_thresholds"
  "ablation_thresholds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
