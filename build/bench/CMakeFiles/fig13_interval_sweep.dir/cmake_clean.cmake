file(REMOVE_RECURSE
  "CMakeFiles/fig13_interval_sweep.dir/fig13_interval_sweep.cpp.o"
  "CMakeFiles/fig13_interval_sweep.dir/fig13_interval_sweep.cpp.o.d"
  "fig13_interval_sweep"
  "fig13_interval_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_interval_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
