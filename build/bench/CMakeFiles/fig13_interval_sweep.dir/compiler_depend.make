# Empty compiler generated dependencies file for fig13_interval_sweep.
# This may be replaced when dependencies are built.
