file(REMOVE_RECURSE
  "CMakeFiles/fig06_hotness_avf.dir/fig06_hotness_avf.cpp.o"
  "CMakeFiles/fig06_hotness_avf.dir/fig06_hotness_avf.cpp.o.d"
  "fig06_hotness_avf"
  "fig06_hotness_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_hotness_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
