# Empty compiler generated dependencies file for fig06_hotness_avf.
# This may be replaced when dependencies are built.
