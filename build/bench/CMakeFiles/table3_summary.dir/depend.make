# Empty dependencies file for table3_summary.
# This may be replaced when dependencies are built.
