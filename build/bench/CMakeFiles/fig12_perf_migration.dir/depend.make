# Empty dependencies file for fig12_perf_migration.
# This may be replaced when dependencies are built.
