file(REMOVE_RECURSE
  "CMakeFiles/fig12_perf_migration.dir/fig12_perf_migration.cpp.o"
  "CMakeFiles/fig12_perf_migration.dir/fig12_perf_migration.cpp.o.d"
  "fig12_perf_migration"
  "fig12_perf_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_perf_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
