# Empty dependencies file for ablation_mea.
# This may be replaced when dependencies are built.
