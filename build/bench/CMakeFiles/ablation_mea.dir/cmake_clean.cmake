file(REMOVE_RECURSE
  "CMakeFiles/ablation_mea.dir/ablation_mea.cpp.o"
  "CMakeFiles/ablation_mea.dir/ablation_mea.cpp.o.d"
  "ablation_mea"
  "ablation_mea.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mea.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
