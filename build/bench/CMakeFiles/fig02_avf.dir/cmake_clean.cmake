file(REMOVE_RECURSE
  "CMakeFiles/fig02_avf.dir/fig02_avf.cpp.o"
  "CMakeFiles/fig02_avf.dir/fig02_avf.cpp.o.d"
  "fig02_avf"
  "fig02_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
