# Empty compiler generated dependencies file for fig02_avf.
# This may be replaced when dependencies are built.
