file(REMOVE_RECURSE
  "CMakeFiles/fig07_rel_static.dir/fig07_rel_static.cpp.o"
  "CMakeFiles/fig07_rel_static.dir/fig07_rel_static.cpp.o.d"
  "fig07_rel_static"
  "fig07_rel_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_rel_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
