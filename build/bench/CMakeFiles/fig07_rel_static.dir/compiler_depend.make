# Empty compiler generated dependencies file for fig07_rel_static.
# This may be replaced when dependencies are built.
