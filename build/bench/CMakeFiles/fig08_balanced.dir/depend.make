# Empty dependencies file for fig08_balanced.
# This may be replaced when dependencies are built.
