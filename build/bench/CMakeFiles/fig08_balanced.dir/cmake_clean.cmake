file(REMOVE_RECURSE
  "CMakeFiles/fig08_balanced.dir/fig08_balanced.cpp.o"
  "CMakeFiles/fig08_balanced.dir/fig08_balanced.cpp.o.d"
  "fig08_balanced"
  "fig08_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
