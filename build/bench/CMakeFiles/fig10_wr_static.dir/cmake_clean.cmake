file(REMOVE_RECURSE
  "CMakeFiles/fig10_wr_static.dir/fig10_wr_static.cpp.o"
  "CMakeFiles/fig10_wr_static.dir/fig10_wr_static.cpp.o.d"
  "fig10_wr_static"
  "fig10_wr_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_wr_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
