# Empty compiler generated dependencies file for fig10_wr_static.
# This may be replaced when dependencies are built.
