# Empty dependencies file for fig05_perf_static.
# This may be replaced when dependencies are built.
