file(REMOVE_RECURSE
  "CMakeFiles/fig05_perf_static.dir/fig05_perf_static.cpp.o"
  "CMakeFiles/fig05_perf_static.dir/fig05_perf_static.cpp.o.d"
  "fig05_perf_static"
  "fig05_perf_static.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_perf_static.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
