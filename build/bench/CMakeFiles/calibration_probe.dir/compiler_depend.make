# Empty compiler generated dependencies file for calibration_probe.
# This may be replaced when dependencies are built.
