file(REMOVE_RECURSE
  "CMakeFiles/calibration_probe.dir/calibration_probe.cpp.o"
  "CMakeFiles/calibration_probe.dir/calibration_probe.cpp.o.d"
  "calibration_probe"
  "calibration_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calibration_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
