file(REMOVE_RECURSE
  "CMakeFiles/faultsim_rates.dir/faultsim_rates.cpp.o"
  "CMakeFiles/faultsim_rates.dir/faultsim_rates.cpp.o.d"
  "faultsim_rates"
  "faultsim_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultsim_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
