# Empty dependencies file for faultsim_rates.
# This may be replaced when dependencies are built.
