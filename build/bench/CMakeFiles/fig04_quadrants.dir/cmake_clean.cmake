file(REMOVE_RECURSE
  "CMakeFiles/fig04_quadrants.dir/fig04_quadrants.cpp.o"
  "CMakeFiles/fig04_quadrants.dir/fig04_quadrants.cpp.o.d"
  "fig04_quadrants"
  "fig04_quadrants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_quadrants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
