# Empty compiler generated dependencies file for fig04_quadrants.
# This may be replaced when dependencies are built.
