file(REMOVE_RECURSE
  "CMakeFiles/fig15_cc_migration.dir/fig15_cc_migration.cpp.o"
  "CMakeFiles/fig15_cc_migration.dir/fig15_cc_migration.cpp.o.d"
  "fig15_cc_migration"
  "fig15_cc_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_cc_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
