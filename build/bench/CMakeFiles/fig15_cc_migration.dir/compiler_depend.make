# Empty compiler generated dependencies file for fig15_cc_migration.
# This may be replaced when dependencies are built.
