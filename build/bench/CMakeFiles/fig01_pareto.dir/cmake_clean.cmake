file(REMOVE_RECURSE
  "CMakeFiles/fig01_pareto.dir/fig01_pareto.cpp.o"
  "CMakeFiles/fig01_pareto.dir/fig01_pareto.cpp.o.d"
  "fig01_pareto"
  "fig01_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
