# Empty compiler generated dependencies file for fig01_pareto.
# This may be replaced when dependencies are built.
