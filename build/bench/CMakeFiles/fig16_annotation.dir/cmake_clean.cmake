file(REMOVE_RECURSE
  "CMakeFiles/fig16_annotation.dir/fig16_annotation.cpp.o"
  "CMakeFiles/fig16_annotation.dir/fig16_annotation.cpp.o.d"
  "fig16_annotation"
  "fig16_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
