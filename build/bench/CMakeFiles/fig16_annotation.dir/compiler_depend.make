# Empty compiler generated dependencies file for fig16_annotation.
# This may be replaced when dependencies are built.
