# Empty dependencies file for migration_tour.
# This may be replaced when dependencies are built.
