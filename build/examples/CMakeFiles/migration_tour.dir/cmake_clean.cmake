file(REMOVE_RECURSE
  "CMakeFiles/migration_tour.dir/migration_tour.cpp.o"
  "CMakeFiles/migration_tour.dir/migration_tour.cpp.o.d"
  "migration_tour"
  "migration_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migration_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
