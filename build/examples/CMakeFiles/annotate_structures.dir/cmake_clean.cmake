file(REMOVE_RECURSE
  "CMakeFiles/annotate_structures.dir/annotate_structures.cpp.o"
  "CMakeFiles/annotate_structures.dir/annotate_structures.cpp.o.d"
  "annotate_structures"
  "annotate_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annotate_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
