# Empty compiler generated dependencies file for annotate_structures.
# This may be replaced when dependencies are built.
