# Empty compiler generated dependencies file for datacenter_mix.
# This may be replaced when dependencies are built.
