file(REMOVE_RECURSE
  "CMakeFiles/datacenter_mix.dir/datacenter_mix.cpp.o"
  "CMakeFiles/datacenter_mix.dir/datacenter_mix.cpp.o.d"
  "datacenter_mix"
  "datacenter_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
