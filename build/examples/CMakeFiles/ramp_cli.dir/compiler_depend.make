# Empty compiler generated dependencies file for ramp_cli.
# This may be replaced when dependencies are built.
