file(REMOVE_RECURSE
  "CMakeFiles/ramp_cli.dir/ramp_cli.cpp.o"
  "CMakeFiles/ramp_cli.dir/ramp_cli.cpp.o.d"
  "ramp_cli"
  "ramp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
