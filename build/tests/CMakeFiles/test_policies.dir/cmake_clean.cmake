file(REMOVE_RECURSE
  "CMakeFiles/test_policies.dir/test_policies.cc.o"
  "CMakeFiles/test_policies.dir/test_policies.cc.o.d"
  "test_policies"
  "test_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
