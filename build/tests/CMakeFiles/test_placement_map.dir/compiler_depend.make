# Empty compiler generated dependencies file for test_placement_map.
# This may be replaced when dependencies are built.
