file(REMOVE_RECURSE
  "CMakeFiles/test_placement_map.dir/test_placement_map.cc.o"
  "CMakeFiles/test_placement_map.dir/test_placement_map.cc.o.d"
  "test_placement_map"
  "test_placement_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
