file(REMOVE_RECURSE
  "CMakeFiles/test_placement_fuzz.dir/test_placement_fuzz.cc.o"
  "CMakeFiles/test_placement_fuzz.dir/test_placement_fuzz.cc.o.d"
  "test_placement_fuzz"
  "test_placement_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_placement_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
