
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_counters.cc" "tests/CMakeFiles/test_counters.dir/test_counters.cc.o" "gcc" "tests/CMakeFiles/test_counters.dir/test_counters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hma/CMakeFiles/ramp_hma.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/ramp_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/ramp_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/ramp_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/migration/CMakeFiles/ramp_migration.dir/DependInfo.cmake"
  "/root/repo/build/src/annotation/CMakeFiles/ramp_annotation.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ramp_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/ramp_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ramp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
