file(REMOVE_RECURSE
  "CMakeFiles/test_counters.dir/test_counters.cc.o"
  "CMakeFiles/test_counters.dir/test_counters.cc.o.d"
  "test_counters"
  "test_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
