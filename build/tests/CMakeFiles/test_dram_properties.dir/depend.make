# Empty dependencies file for test_dram_properties.
# This may be replaced when dependencies are built.
