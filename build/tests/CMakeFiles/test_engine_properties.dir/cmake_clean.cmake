file(REMOVE_RECURSE
  "CMakeFiles/test_engine_properties.dir/test_engine_properties.cc.o"
  "CMakeFiles/test_engine_properties.dir/test_engine_properties.cc.o.d"
  "test_engine_properties"
  "test_engine_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_engine_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
