# Empty compiler generated dependencies file for test_generator_semantics.
# This may be replaced when dependencies are built.
