file(REMOVE_RECURSE
  "CMakeFiles/test_generator_semantics.dir/test_generator_semantics.cc.o"
  "CMakeFiles/test_generator_semantics.dir/test_generator_semantics.cc.o.d"
  "test_generator_semantics"
  "test_generator_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generator_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
