file(REMOVE_RECURSE
  "CMakeFiles/test_cache_reference.dir/test_cache_reference.cc.o"
  "CMakeFiles/test_cache_reference.dir/test_cache_reference.cc.o.d"
  "test_cache_reference"
  "test_cache_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
