# Empty compiler generated dependencies file for test_cache_reference.
# This may be replaced when dependencies are built.
