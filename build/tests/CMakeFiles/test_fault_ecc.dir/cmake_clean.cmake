file(REMOVE_RECURSE
  "CMakeFiles/test_fault_ecc.dir/test_fault_ecc.cc.o"
  "CMakeFiles/test_fault_ecc.dir/test_fault_ecc.cc.o.d"
  "test_fault_ecc"
  "test_fault_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fault_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
