# Empty dependencies file for test_fault_ecc.
# This may be replaced when dependencies are built.
