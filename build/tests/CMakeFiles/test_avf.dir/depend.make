# Empty dependencies file for test_avf.
# This may be replaced when dependencies are built.
