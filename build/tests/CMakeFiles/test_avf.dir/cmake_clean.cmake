file(REMOVE_RECURSE
  "CMakeFiles/test_avf.dir/test_avf.cc.o"
  "CMakeFiles/test_avf.dir/test_avf.cc.o.d"
  "test_avf"
  "test_avf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
