# Empty dependencies file for test_avf_reference.
# This may be replaced when dependencies are built.
