file(REMOVE_RECURSE
  "CMakeFiles/test_avf_reference.dir/test_avf_reference.cc.o"
  "CMakeFiles/test_avf_reference.dir/test_avf_reference.cc.o.d"
  "test_avf_reference"
  "test_avf_reference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_avf_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
