file(REMOVE_RECURSE
  "CMakeFiles/test_annotation.dir/test_annotation.cc.o"
  "CMakeFiles/test_annotation.dir/test_annotation.cc.o.d"
  "test_annotation"
  "test_annotation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_annotation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
