# Empty dependencies file for test_annotation.
# This may be replaced when dependencies are built.
